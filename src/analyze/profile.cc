#include "analyze/profile.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "analyze/passes.h"

namespace ws {

using analyze_detail::Levelization;

StaticProfile
analyzeGraph(const DataflowGraph &g)
{
    StaticProfile profile;
    profile.graph = g.name();
    profile.numThreads = g.numThreads();
    profile.mix = g.mix();
    profile.threads.resize(g.numThreads());
    for (ThreadId t = 0; t < g.numThreads(); ++t) {
        profile.threads[t].thread = t;
        profile.threads[t].mix = g.threadMix(t);
    }

    const Levelization lv = analyze_detail::levelize(g);
    analyze_detail::runCritPath(g, lv, profile);
    analyze_detail::runWidth(g, lv, profile);
    analyze_detail::runMemChain(g, profile);
    return profile;
}

StaticProfile
analyzeGraph(const DataflowGraph &g, const Placement &placement)
{
    StaticProfile profile = analyzeGraph(g);
    analyze_detail::runLocality(g, placement, profile);
    return profile;
}

double
staticAipcBound(const StaticProfile &profile, const MachineBoundParams &m)
{
    double sum = 0.0;
    for (const ThreadProfile &tp : profile.threads) {
        const double useful = static_cast<double>(tp.mix.useful);
        if (useful == 0.0)
            continue;
        double bound = 0.0;
        if (!tp.cyclic) {
            // Straight-line thread: every instruction fires once and
            // the run takes at least the critical path.
            const double depth = static_cast<double>(
                std::max<Counter>(tp.critPathLatency, 1));
            bound = useful / depth;
        } else {
            // Looping thread: the steady state is waves retiring at
            // rate r, each re-executing the per-wave instructions.
            // r <= 1/lambda (the loop-carried recurrence) and the
            // store buffer must retire a full ordering chain per wave
            // at sbIssueWidth ops/cycle. The one-shot remainder
            // (prologue/epilogue) amortizes over the critical path.
            const double lambda = static_cast<double>(
                std::max<Counter>(tp.minCycleLatency, 1));
            double rate = 1.0 / lambda;
            if (tp.minChainLen > 0) {
                rate = std::min(
                    rate, m.sbIssueWidth /
                              static_cast<double>(tp.minChainLen));
            }
            const double perWave =
                static_cast<double>(tp.perWaveUseful);
            const double once = useful - perWave;
            const double depth = static_cast<double>(
                std::max<Counter>(tp.critPathLatency, 1));
            bound = std::min(useful, perWave * rate + once / depth);
        }
        sum += bound;
    }
    // Machine issue ceiling: one instruction per PE per cycle.
    return std::min(sum, m.totalPes);
}

std::string
renderProfile(const StaticProfile &p)
{
    std::ostringstream out;
    char buf[160];
    std::snprintf(buf, sizeof(buf), "%s: %llu insts (%llu useful), "
                  "%u thread%s\n",
                  p.graph.c_str(),
                  static_cast<unsigned long long>(p.mix.total),
                  static_cast<unsigned long long>(p.mix.useful),
                  p.numThreads, p.numThreads == 1 ? "" : "s");
    out << buf;
    std::snprintf(buf, sizeof(buf),
                  "  mix: %llu compute / %llu memory / %llu control / "
                  "%llu plumbing (%llu fp)\n",
                  static_cast<unsigned long long>(p.mix.compute),
                  static_cast<unsigned long long>(p.mix.memory),
                  static_cast<unsigned long long>(p.mix.control),
                  static_cast<unsigned long long>(p.mix.plumbing),
                  static_cast<unsigned long long>(p.mix.fp));
    out << buf;
    std::snprintf(buf, sizeof(buf),
                  "  levels %llu, crit path %llu cycles, width peak "
                  "%llu (useful %llu, avg %.2f), back edges %llu\n",
                  static_cast<unsigned long long>(p.levels),
                  static_cast<unsigned long long>(p.critPathLatency),
                  static_cast<unsigned long long>(p.peakWidth),
                  static_cast<unsigned long long>(p.peakUsefulWidth),
                  p.avgUsefulWidth,
                  static_cast<unsigned long long>(p.backEdges));
    out << buf;
    std::snprintf(buf, sizeof(buf),
                  "  memory: %llu ordering chains, depth max %llu\n",
                  static_cast<unsigned long long>(p.memRegionCount),
                  static_cast<unsigned long long>(p.memChainDepth));
    out << buf;
    for (const ThreadProfile &tp : p.threads) {
        std::snprintf(buf, sizeof(buf),
                      "  t%u: %llu useful, crit %llu, %s, per-wave "
                      "%llu useful / lambda %llu, chains %llu "
                      "[%llu..%llu]\n",
                      tp.thread,
                      static_cast<unsigned long long>(tp.mix.useful),
                      static_cast<unsigned long long>(
                          tp.critPathLatency),
                      tp.cyclic ? "cyclic" : "acyclic",
                      static_cast<unsigned long long>(tp.perWaveUseful),
                      static_cast<unsigned long long>(
                          tp.minCycleLatency),
                      static_cast<unsigned long long>(
                          tp.memRegionCount),
                      static_cast<unsigned long long>(tp.minChainLen),
                      static_cast<unsigned long long>(
                          tp.memChainDepth));
        out << buf;
    }
    if (p.hasLocality) {
        std::snprintf(buf, sizeof(buf),
                      "  locality: %llu edges: %llu pe / %llu pod / "
                      "%llu domain / %llu cluster / %llu grid\n",
                      static_cast<unsigned long long>(p.spans.total),
                      static_cast<unsigned long long>(p.spans.intraPe),
                      static_cast<unsigned long long>(p.spans.intraPod),
                      static_cast<unsigned long long>(
                          p.spans.intraDomain),
                      static_cast<unsigned long long>(
                          p.spans.intraCluster),
                      static_cast<unsigned long long>(
                          p.spans.interCluster));
        out << buf;
    }
    return out.str();
}

namespace {

Json
mixToJson(const InstructionMix &m)
{
    Json j = Json::object();
    j["total"] = m.total;
    j["useful"] = m.useful;
    j["compute"] = m.compute;
    j["memory"] = m.memory;
    j["control"] = m.control;
    j["plumbing"] = m.plumbing;
    j["fp"] = m.fp;
    j["memory_all"] = m.memoryAll;
    return j;
}

} // namespace

Json
profileToJson(const StaticProfile &p)
{
    Json j = Json::object();
    j["graph"] = p.graph;
    j["threads"] = static_cast<std::uint64_t>(p.numThreads);
    j["mix"] = mixToJson(p.mix);
    j["levels"] = p.levels;
    j["crit_path_latency"] = p.critPathLatency;
    j["peak_width"] = p.peakWidth;
    j["peak_useful_width"] = p.peakUsefulWidth;
    j["avg_useful_width"] = p.avgUsefulWidth;
    j["back_edges"] = p.backEdges;
    j["mem_chain_depth"] = p.memChainDepth;
    j["mem_regions"] = p.memRegionCount;

    Json hist = Json::array();
    for (const Counter w : p.widthHist)
        hist.push(w);
    j["width_hist"] = std::move(hist);
    Json uhist = Json::array();
    for (const Counter w : p.usefulWidthHist)
        uhist.push(w);
    j["useful_width_hist"] = std::move(uhist);

    Json threads = Json::array();
    for (const ThreadProfile &tp : p.threads) {
        Json t = Json::object();
        t["thread"] = static_cast<std::uint64_t>(tp.thread);
        t["mix"] = mixToJson(tp.mix);
        t["crit_path_latency"] = tp.critPathLatency;
        t["levels"] = tp.levels;
        t["peak_width"] = tp.peakWidth;
        t["peak_useful_width"] = tp.peakUsefulWidth;
        t["cyclic"] = tp.cyclic;
        t["min_cycle_latency"] = tp.minCycleLatency;
        t["per_wave_useful"] = tp.perWaveUseful;
        t["per_wave_mem_ops"] = tp.perWaveMemOps;
        t["mem_chain_depth"] = tp.memChainDepth;
        t["min_chain_len"] = tp.minChainLen;
        t["mem_regions"] = tp.memRegionCount;
        threads.push(std::move(t));
    }
    j["per_thread"] = std::move(threads);

    if (p.hasLocality) {
        Json loc = Json::object();
        loc["edges"] = p.spans.total;
        loc["intra_pe"] = p.spans.intraPe;
        loc["intra_pod"] = p.spans.intraPod;
        loc["intra_domain"] = p.spans.intraDomain;
        loc["intra_cluster"] = p.spans.intraCluster;
        loc["inter_cluster"] = p.spans.interCluster;
        loc["weighted_cost"] = p.spans.weightedCost;
        j["locality"] = std::move(loc);
    }
    return j;
}

} // namespace ws
