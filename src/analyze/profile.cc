#include "analyze/profile.h"

#include <sstream>

#include "analyze/passes.h"

namespace ws {

using analyze_detail::Levelization;

StaticProfile
analyzeGraph(const DataflowGraph &g)
{
    StaticProfile profile;
    profile.graph = g.name();
    profile.numThreads = g.numThreads();
    profile.mix = g.mix();
    profile.threads.resize(g.numThreads());
    for (ThreadId t = 0; t < g.numThreads(); ++t) {
        profile.threads[t].thread = t;
        profile.threads[t].mix = g.threadMix(t);
    }

    const Levelization lv = analyze_detail::levelize(g);
    analyze_detail::runCritPath(g, lv, profile);
    analyze_detail::runWidth(g, lv, profile);
    analyze_detail::runMemChain(g, profile);
    return profile;
}

StaticProfile
analyzeGraph(const DataflowGraph &g, const Placement &placement)
{
    StaticProfile profile = analyzeGraph(g);
    analyze_detail::runLocality(g, placement, profile);
    return profile;
}

std::string
renderProfile(const StaticProfile &p)
{
    // Stream formatting throughout: graph names are user-controlled and
    // arbitrarily long, so no fixed-size buffers anywhere in this path.
    std::ostringstream out;
    out << p.graph << ": " << p.mix.total << " insts (" << p.mix.useful
        << " useful), " << p.numThreads
        << (p.numThreads == 1 ? " thread\n" : " threads\n");
    out << "  mix: " << p.mix.compute << " compute / " << p.mix.memory
        << " memory / " << p.mix.control << " control / "
        << p.mix.plumbing << " plumbing (" << p.mix.fp << " fp)\n";
    out << "  levels " << p.levels << ", crit path "
        << p.critPathLatency << " cycles, width peak " << p.peakWidth
        << " (useful " << p.peakUsefulWidth << ", avg ";
    {
        const auto flags = out.flags();
        const auto precision = out.precision();
        out.setf(std::ios::fixed);
        out.precision(2);
        out << p.avgUsefulWidth;
        out.flags(flags);
        out.precision(precision);
    }
    out << "), back edges " << p.backEdges << "\n";
    out << "  memory: " << p.memRegionCount
        << " ordering chains, depth max " << p.memChainDepth << "\n";
    for (const ThreadProfile &tp : p.threads) {
        out << "  t" << tp.thread << ": " << tp.mix.useful
            << " useful, crit " << tp.critPathLatency << ", "
            << (tp.cyclic ? "cyclic" : "acyclic") << ", per-wave "
            << tp.perWaveUseful << " useful / lambda "
            << tp.minCycleLatency;
        if (tp.cycleRatio > 0.0) {
            const auto flags = out.flags();
            const auto precision = out.precision();
            out.setf(std::ios::fixed);
            out.precision(2);
            out << " (ratio " << tp.cycleRatio << ")";
            out.flags(flags);
            out.precision(precision);
        }
        out << ", chains " << tp.memRegionCount << " ["
            << tp.minChainLen << ".." << tp.memChainDepth << "]\n";
    }
    if (p.hasLocality) {
        out << "  locality: " << p.spans.total << " edges: "
            << p.spans.intraPe << " pe / " << p.spans.intraPod
            << " pod / " << p.spans.intraDomain << " domain / "
            << p.spans.intraCluster << " cluster / "
            << p.spans.interCluster << " grid\n";
    }
    return out.str();
}

namespace {

Json
mixToJson(const InstructionMix &m)
{
    Json j = Json::object();
    j["total"] = m.total;
    j["useful"] = m.useful;
    j["compute"] = m.compute;
    j["memory"] = m.memory;
    j["control"] = m.control;
    j["plumbing"] = m.plumbing;
    j["fp"] = m.fp;
    j["memory_all"] = m.memoryAll;
    return j;
}

} // namespace

Json
profileToJson(const StaticProfile &p)
{
    Json j = Json::object();
    j["graph"] = p.graph;
    j["threads"] = static_cast<std::uint64_t>(p.numThreads);
    j["mix"] = mixToJson(p.mix);
    j["levels"] = p.levels;
    j["crit_path_latency"] = p.critPathLatency;
    j["peak_width"] = p.peakWidth;
    j["peak_useful_width"] = p.peakUsefulWidth;
    j["avg_useful_width"] = p.avgUsefulWidth;
    j["back_edges"] = p.backEdges;
    j["mem_chain_depth"] = p.memChainDepth;
    j["mem_regions"] = p.memRegionCount;

    Json hist = Json::array();
    for (const Counter w : p.widthHist)
        hist.push(w);
    j["width_hist"] = std::move(hist);
    Json uhist = Json::array();
    for (const Counter w : p.usefulWidthHist)
        uhist.push(w);
    j["useful_width_hist"] = std::move(uhist);

    Json threads = Json::array();
    for (const ThreadProfile &tp : p.threads) {
        Json t = Json::object();
        t["thread"] = static_cast<std::uint64_t>(tp.thread);
        t["mix"] = mixToJson(tp.mix);
        t["crit_path_latency"] = tp.critPathLatency;
        t["levels"] = tp.levels;
        t["peak_width"] = tp.peakWidth;
        t["peak_useful_width"] = tp.peakUsefulWidth;
        t["cyclic"] = tp.cyclic;
        t["min_cycle_latency"] = tp.minCycleLatency;
        t["cycle_ratio"] = tp.cycleRatio;
        t["per_wave_useful"] = tp.perWaveUseful;
        t["per_wave_mem_ops"] = tp.perWaveMemOps;
        t["mem_chain_depth"] = tp.memChainDepth;
        t["min_chain_len"] = tp.minChainLen;
        t["mem_regions"] = tp.memRegionCount;
        threads.push(std::move(t));
    }
    j["per_thread"] = std::move(threads);

    if (p.hasLocality) {
        Json loc = Json::object();
        loc["edges"] = p.spans.total;
        loc["intra_pe"] = p.spans.intraPe;
        loc["intra_pod"] = p.spans.intraPod;
        loc["intra_domain"] = p.spans.intraDomain;
        loc["intra_cluster"] = p.spans.intraCluster;
        loc["inter_cluster"] = p.spans.interCluster;
        loc["weighted_cost"] = p.spans.weightedCost;
        j["locality"] = std::move(loc);
    }
    return j;
}

} // namespace ws
