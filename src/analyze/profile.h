/**
 * @file
 * Static analysis over a verified DataflowGraph: "what is this graph
 * worth?" where src/verify answers "is this graph legal?".
 *
 * analyzeGraph() runs the collect-all analysis passes (mirroring the
 * verifier's pass architecture) and returns a StaticProfile:
 *
 *  - ASAP/ALAP levelization and the latency-weighted dataflow critical
 *    path, per thread and whole-graph (back edges of loops dropped);
 *  - width/ILP histogram: instructions per ASAP level, total and useful;
 *  - wave-ordered memory chain depths (the store-buffer serialization
 *    floor of each thread);
 *  - loop shape: which instructions re-execute every wave and the
 *    minimum latency of a wave-advance recurrence (the initiation
 *    interval floor);
 *  - communication locality under a Placement (edge-span census).
 *
 * staticAipcBound() turns a profile plus a machine summary into an
 * upper estimate of the AIPC any simulation of that graph can reach on
 * that machine; the sweep engine uses it to skip provably-dominated
 * thread-count candidates (see ARCHITECTURE.md §8 for the soundness
 * argument and its deliberate approximations).
 */

#ifndef WS_ANALYZE_PROFILE_H_
#define WS_ANALYZE_PROFILE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/types.h"
#include "isa/graph.h"
#include "place/placement.h"

namespace ws {

/** Per-thread slice of the static profile. */
struct ThreadProfile
{
    ThreadId thread = 0;
    InstructionMix mix;

    Counter critPathLatency = 0;  ///< Latency-weighted ASAP depth D_t.
    Counter levels = 0;           ///< ASAP level count.
    Counter peakWidth = 0;        ///< Widest ASAP level.
    Counter peakUsefulWidth = 0;  ///< Widest useful slice of a level.

    bool cyclic = false;          ///< Thread contains a dataflow loop.
    Counter minCycleLatency = 0;  ///< Shortest wave-advance recurrence
                                  ///  (0 when acyclic): the initiation
                                  ///  interval floor of the loop.
    double cycleRatio = 0.0;      ///< Unit-weight max cycle ratio: the
                                  ///  most dependence hops any loop
                                  ///  takes per wave advance (0 when
                                  ///  acyclic). Placement-free floor of
                                  ///  the initiation interval — every
                                  ///  hop costs >=1 cycle even under
                                  ///  pod bypass.
    Counter perWaveUseful = 0;    ///< Useful insts that re-execute every
                                  ///  wave (in or downstream of a loop).
    Counter perWaveMemOps = 0;    ///< Chain ops re-executed every wave.

    Counter memChainDepth = 0;    ///< Longest wave-ordering chain L_t.
    Counter minChainLen = 0;      ///< Shortest registered chain.
    Counter memRegionCount = 0;
};

/** Collect-all result of the static analysis passes over one graph. */
struct StaticProfile
{
    std::string graph;
    std::uint16_t numThreads = 1;
    InstructionMix mix;

    Counter critPathLatency = 0;  ///< Max over threads.
    Counter levels = 0;           ///< Whole-graph ASAP level count.
    Counter peakWidth = 0;
    Counter peakUsefulWidth = 0;
    double avgUsefulWidth = 0.0;  ///< useful / levels.
    Counter backEdges = 0;        ///< Cycle-closing edges dropped.

    Counter memChainDepth = 0;    ///< Max over threads.
    Counter memRegionCount = 0;

    std::vector<Counter> widthHist;        ///< Insts per ASAP level.
    std::vector<Counter> usefulWidthHist;  ///< Useful insts per level.
    std::vector<std::uint32_t> asap;       ///< Per-inst ASAP level.
    std::vector<std::uint32_t> alap;       ///< Per-inst ALAP level.

    std::vector<ThreadProfile> threads;

    bool hasLocality = false;     ///< edgeSpans populated (placement given).
    EdgeSpanCounts spans;

    /** Scheduling freedom of @p id (alap - asap). */
    std::uint32_t slack(InstId id) const { return alap[id] - asap[id]; }
};

/** Run every analysis pass over @p g. */
StaticProfile analyzeGraph(const DataflowGraph &g);

/** Same, plus the locality pass under @p placement. */
StaticProfile analyzeGraph(const DataflowGraph &g,
                           const Placement &placement);

/**
 * The machine parameters the static bound consumes. Kept free of
 * ProcessorConfig so ws_analyze does not depend on ws_core; the driver
 * provides the bridge (driver/static_prune.h).
 */
struct MachineBoundParams
{
    double totalPes = 64;          ///< Each PE retires <=1 inst/cycle.
    double sbIssueWidth = 4;       ///< Store-buffer chain ops/cycle,
                                   ///  shared by every thread homed on
                                   ///  one cluster.
    bool podBypass = true;         ///< Pod partners dispatch dependents
                                   ///  on the next cycle (speculative
                                   ///  bypass), regardless of latency.
    // Capacity context, reported with the bound breakdown. Matching
    // tables and operand queues bound *occupancy*, not steady-state
    // rate: both spill into latency-soft paths (overflow, deferred
    // inserts), so no hard rate ceiling can be soundly derived from
    // them (ARCHITECTURE.md §8.3). They still travel with the bound so
    // tightness reports can correlate looseness with capacity pressure.
    double matchingEntries = 128;
    double outputQueueEntries = 4;
    double waveWindow = 4;         ///< k-loop bound (waves in flight).
};

/**
 * Minimum extra producer-dispatch-to-consumer-dispatch transit per
 * placement span, in cycles, on top of the producer's execute latency.
 * Sound under-estimates of the simulator's delivery paths; the driver
 * derives them from LatencyConfig (driver/static_prune.h), and the
 * defaults match the baseline machine. A pod-bypass edge costs 1 cycle
 * TOTAL (speculative scheduling beats the producer's own latency).
 */
struct TransitFloors
{
    bool podBypass = true;  ///< Pod edges use the 1-cycle bypass.
    double domain = 2;      ///< Same domain, different pod (domain bus).
    double cluster = 6;     ///< Same cluster, different domain.
    double grid = 7;        ///< Crosses the cluster grid (>=1 hop).
};

/** Placement-resolved per-thread facts the resource bound consumes. */
struct PlacedThreadStats
{
    ThreadId thread = 0;
    Counter usefulPes = 0;       ///< Distinct PEs hosting useful insts.
    Counter maxPeUsefulLoad = 0; ///< Most useful insts homed on one PE.
    ClusterId homeCluster = 0;   ///< Store buffer owning wave ordering.
    double placedDepth = 0.0;    ///< Transit-weighted critical path.
    double lambda = 0.0;         ///< Transit-weighted max cycle ratio
                                 ///  (0 = acyclic): cycles per wave.
};

/** Placement-resolved augmentation of a StaticProfile. */
struct PlacedProfile
{
    EdgeSpanCounts spans;
    std::vector<PlacedThreadStats> threads;
};

/** Resolve @p g under @p placement: per-thread PE occupancy, home
 *  clusters, and the transit-weighted depth/recurrence analyses. */
PlacedProfile analyzePlacedProfile(const DataflowGraph &g,
                                   const Placement &placement,
                                   const TransitFloors &floors);

/** The constraint a bound (or one thread's slice of it) binds on. */
enum class BoundTerm : std::uint8_t
{
    kNone,         ///< No useful work; the bound is trivially 0.
    kUseful,       ///< Total useful instruction count (short runs).
    kDepth,        ///< Dataflow critical path (acyclic threads).
    kRecurrence,   ///< Loop-carried wave recurrence (max cycle ratio).
    kStoreBuffer,  ///< Per-thread ordering-chain retire bandwidth.
    kSbShared,     ///< Cluster store buffer shared across threads.
    kPeOccupancy,  ///< Distinct PEs hosting the thread's useful insts.
    kMachineIssue, ///< One instruction per PE per cycle, machine-wide.
};
constexpr std::size_t kBoundTermCount = 8;

/** Stable lower-case label, e.g. "recurrence" (JSON and logs). */
const char *boundTermName(BoundTerm term);

/** staticAipcBound() with per-constraint attribution. */
struct BoundBreakdown
{
    double bound = 0.0;                  ///< The machine-level bound.
    BoundTerm binding = BoundTerm::kNone;///< Constraint that set it.
    double threadSum = 0.0;              ///< Sum of per-thread bounds
                                         ///  before machine-level caps.
    double machineCap = 0.0;             ///< totalPes issue ceiling.
    bool placed = false;                 ///< Placement terms applied.

    struct Thread
    {
        ThreadId thread = 0;
        double bound = 0.0;              ///< This thread's contribution.
        BoundTerm binding = BoundTerm::kNone;
        double lambda = 0.0;             ///< Recurrence used (0 = none).
        double waveRate = 0.0;           ///< Waves/cycle ceiling (cyclic).
        double depth = 0.0;              ///< Denominator of the one-shot
                                         ///  (acyclic) term.
    };
    std::vector<Thread> threads;

    struct SharedSb
    {
        ClusterId cluster = 0;
        double unshared = 0.0;  ///< Sum of the group's solo bounds.
        double shared = 0.0;    ///< Group total after splitting
                                ///  issueWidth (each member still
                                ///  capped by its solo bound).
    };
    std::vector<SharedSb> sbShared;      ///< Clusters where sharing bit.
};

/**
 * Upper estimate of the AIPC any execution of the profiled graph can
 * reach on machine @p m, with the binding constraint named per thread
 * and machine-wide. Placement-free: transit, PE occupancy, and shared
 * store-buffer terms are unavailable, so recurrences weigh every
 * dependence hop at the 1-cycle pod-bypass floor (the best any
 * placement could do when m.podBypass is set).
 */
BoundBreakdown staticAipcBoundDetail(const StaticProfile &profile,
                                     const MachineBoundParams &m);

/**
 * Placement-resolved bound: recurrence and depth terms use the
 * transit-weighted analyses in @p placed, each thread is additionally
 * capped by the PEs its useful instructions actually occupy, and
 * threads sharing a home cluster split that store buffer's issue
 * bandwidth (fractional-knapsack relaxation — an upper bound on any
 * schedule the hardware could achieve).
 */
BoundBreakdown staticAipcBoundDetail(const StaticProfile &profile,
                                     const PlacedProfile &placed,
                                     const MachineBoundParams &m);

/** The bound alone (wraps staticAipcBoundDetail). */
double staticAipcBound(const StaticProfile &profile,
                       const MachineBoundParams &m);

/** The placed bound alone. */
double staticAipcBound(const StaticProfile &profile,
                       const PlacedProfile &placed,
                       const MachineBoundParams &m);

/** Human-readable profile report (wsa-opt's report mode). */
std::string renderProfile(const StaticProfile &profile);

/** Human-readable bound breakdown (wsa-opt / wsa-lint --analyze). */
std::string renderBound(const BoundBreakdown &b);

/** Machine-readable twin (wsa-opt --json; CI artifacts). */
Json profileToJson(const StaticProfile &profile);

/** Machine-readable bound breakdown (harness JSON twins). */
Json boundToJson(const BoundBreakdown &b);

} // namespace ws

#endif // WS_ANALYZE_PROFILE_H_
