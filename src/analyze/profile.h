/**
 * @file
 * Static analysis over a verified DataflowGraph: "what is this graph
 * worth?" where src/verify answers "is this graph legal?".
 *
 * analyzeGraph() runs the collect-all analysis passes (mirroring the
 * verifier's pass architecture) and returns a StaticProfile:
 *
 *  - ASAP/ALAP levelization and the latency-weighted dataflow critical
 *    path, per thread and whole-graph (back edges of loops dropped);
 *  - width/ILP histogram: instructions per ASAP level, total and useful;
 *  - wave-ordered memory chain depths (the store-buffer serialization
 *    floor of each thread);
 *  - loop shape: which instructions re-execute every wave and the
 *    minimum latency of a wave-advance recurrence (the initiation
 *    interval floor);
 *  - communication locality under a Placement (edge-span census).
 *
 * staticAipcBound() turns a profile plus a machine summary into an
 * upper estimate of the AIPC any simulation of that graph can reach on
 * that machine; the sweep engine uses it to skip provably-dominated
 * thread-count candidates (see ARCHITECTURE.md §8 for the soundness
 * argument and its deliberate approximations).
 */

#ifndef WS_ANALYZE_PROFILE_H_
#define WS_ANALYZE_PROFILE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/types.h"
#include "isa/graph.h"
#include "place/placement.h"

namespace ws {

/** Per-thread slice of the static profile. */
struct ThreadProfile
{
    ThreadId thread = 0;
    InstructionMix mix;

    Counter critPathLatency = 0;  ///< Latency-weighted ASAP depth D_t.
    Counter levels = 0;           ///< ASAP level count.
    Counter peakWidth = 0;        ///< Widest ASAP level.
    Counter peakUsefulWidth = 0;  ///< Widest useful slice of a level.

    bool cyclic = false;          ///< Thread contains a dataflow loop.
    Counter minCycleLatency = 0;  ///< Shortest wave-advance recurrence
                                  ///  (0 when acyclic): the initiation
                                  ///  interval floor of the loop.
    Counter perWaveUseful = 0;    ///< Useful insts that re-execute every
                                  ///  wave (in or downstream of a loop).
    Counter perWaveMemOps = 0;    ///< Chain ops re-executed every wave.

    Counter memChainDepth = 0;    ///< Longest wave-ordering chain L_t.
    Counter minChainLen = 0;      ///< Shortest registered chain.
    Counter memRegionCount = 0;
};

/** Collect-all result of the static analysis passes over one graph. */
struct StaticProfile
{
    std::string graph;
    std::uint16_t numThreads = 1;
    InstructionMix mix;

    Counter critPathLatency = 0;  ///< Max over threads.
    Counter levels = 0;           ///< Whole-graph ASAP level count.
    Counter peakWidth = 0;
    Counter peakUsefulWidth = 0;
    double avgUsefulWidth = 0.0;  ///< useful / levels.
    Counter backEdges = 0;        ///< Cycle-closing edges dropped.

    Counter memChainDepth = 0;    ///< Max over threads.
    Counter memRegionCount = 0;

    std::vector<Counter> widthHist;        ///< Insts per ASAP level.
    std::vector<Counter> usefulWidthHist;  ///< Useful insts per level.
    std::vector<std::uint32_t> asap;       ///< Per-inst ASAP level.
    std::vector<std::uint32_t> alap;       ///< Per-inst ALAP level.

    std::vector<ThreadProfile> threads;

    bool hasLocality = false;     ///< edgeSpans populated (placement given).
    EdgeSpanCounts spans;

    /** Scheduling freedom of @p id (alap - asap). */
    std::uint32_t slack(InstId id) const { return alap[id] - asap[id]; }
};

/** Run every analysis pass over @p g. */
StaticProfile analyzeGraph(const DataflowGraph &g);

/** Same, plus the locality pass under @p placement. */
StaticProfile analyzeGraph(const DataflowGraph &g,
                           const Placement &placement);

/**
 * The machine parameters the static bound consumes. Kept free of
 * ProcessorConfig so ws_analyze does not depend on ws_core; the driver
 * provides the bridge (driver/static_prune.h).
 */
struct MachineBoundParams
{
    double totalPes = 64;        ///< Each PE retires <=1 inst/cycle.
    double sbIssueWidth = 4;     ///< Store-buffer chain ops/cycle.
};

/**
 * Upper estimate of the AIPC any execution of the profiled graph can
 * reach on machine @p m. Per thread: an acyclic thread executes each
 * instruction once across at least its critical path, so its rate is
 * useful/D_t; a looping thread is gated by the wave initiation interval
 * (shortest wave-advance recurrence) and by the store buffer having to
 * retire every wave's ordering chain. The sum is capped by machine
 * issue width (one instruction per PE per cycle).
 */
double staticAipcBound(const StaticProfile &profile,
                       const MachineBoundParams &m);

/** Human-readable profile report (wsa-opt's report mode). */
std::string renderProfile(const StaticProfile &profile);

/** Machine-readable twin (wsa-opt --json; CI artifacts). */
Json profileToJson(const StaticProfile &profile);

} // namespace ws

#endif // WS_ANALYZE_PROFILE_H_
