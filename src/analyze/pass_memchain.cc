/**
 * @file
 * Wave-ordered memory chain depths. Every wave a thread issues must
 * retire its region's full ordering chain through the store buffer
 * (issueWidth chain ops per cycle), so the chain lengths are the
 * serialization floor of the memory system: the longest chain bounds a
 * single wave's memory latency, the shortest bounds how little chain
 * work any wave can get away with (which is what the throughput bound
 * may safely assume).
 */

#include <algorithm>

#include "analyze/passes.h"

namespace ws {
namespace analyze_detail {

void
runMemChain(const DataflowGraph &g, StaticProfile &profile)
{
    for (const std::vector<InstId> &chain : g.memRegions()) {
        if (chain.empty())
            continue;
        const Counter len = chain.size();
        profile.memChainDepth = std::max(profile.memChainDepth, len);
        ++profile.memRegionCount;

        const InstId head = chain.front();
        if (head >= g.size())
            continue;
        const ThreadId t = g.inst(head).thread;
        if (t >= profile.threads.size())
            continue;
        ThreadProfile &tp = profile.threads[t];
        tp.memChainDepth = std::max(tp.memChainDepth, len);
        tp.minChainLen =
            tp.minChainLen == 0 ? len : std::min(tp.minChainLen, len);
        ++tp.memRegionCount;
    }
}

} // namespace analyze_detail
} // namespace ws
