/**
 * @file
 * The optimization side of the analyzer: report WS5xx advisories
 * (adviseGraph) or actually perform the rewrites (optimizeGraph).
 *
 * Both consume the same candidate detectors (analyze/passes.h), so a
 * graph optimizeGraph() has run to fixpoint produces zero WS5xx
 * advisories by construction. Rewrites preserve observable semantics —
 * sink values, final memory, and completion — and every rewritten
 * graph must still pass the full WS1xx–WS4xx verifier; wsa-opt and the
 * tests assert both.
 */

#ifndef WS_ANALYZE_REWRITER_H_
#define WS_ANALYZE_REWRITER_H_

#include "isa/graph.h"
#include "verify/diagnostic.h"

namespace ws {

/** What optimizeGraph() did. */
struct RewriteStats
{
    Counter folded = 0;     ///< Ops rewritten to kConst (WS501).
    Counter bypassed = 0;   ///< Single-consumer movs removed (WS503).
    Counter removed = 0;    ///< Dead instructions eliminated (WS502).
    Counter rounds = 0;     ///< Fixpoint iterations.

    bool changed() const { return folded + bypassed + removed != 0; }
};

/** Report every optimization opportunity as WS5xx notes (no rewrite). */
VerifyReport adviseGraph(const DataflowGraph &g);

/**
 * Rewrite @p g in place: constant folding, copy-chain bypass, and
 * dead-node elimination, iterated to fixpoint, then id compaction.
 * Wave-ordering chains are never touched (memory ops are liveness
 * roots), so the wave-ordered memory annotations survive verbatim.
 */
RewriteStats optimizeGraph(DataflowGraph &g);

} // namespace ws

#endif // WS_ANALYZE_REWRITER_H_
