/**
 * @file
 * The optimization side of the analyzer: report WS5xx advisories
 * (adviseGraph) or actually perform the rewrites (optimizeGraph).
 *
 * Both consume the same candidate detectors (analyze/passes.h), so a
 * graph optimizeGraph() has run to fixpoint produces zero WS5xx
 * advisories by construction. Rewrites preserve observable semantics —
 * sink values, final memory, and completion — and every rewritten
 * graph must still pass the full WS1xx–WS4xx verifier; wsa-opt and the
 * tests assert both.
 *
 * By default every rewrite round is translation-validated: the result
 * is proven equivalent to the pre-round graph by the symbolic checker
 * (analyze/equiv.h), and a round that cannot be proven is rolled back
 * and optimization stops — a miscompile can surface as a missed
 * optimization plus WS8xx findings, never as a wrong program. A final
 * end-to-end check compares the compacted result against the original.
 */

#ifndef WS_ANALYZE_REWRITER_H_
#define WS_ANALYZE_REWRITER_H_

#include <string>

#include "isa/graph.h"
#include "verify/diagnostic.h"

namespace ws {

/** Knobs for optimizeGraph(). Defaults: everything on. */
struct RewriteOptions
{
    bool verifyEquiv = true;  ///< Validate-or-rollback every round.
    bool cse = true;          ///< WS504 merges + entry-mov retargets.
    bool algebraic = true;    ///< WS505 identities / strength reduction.
};

/** What optimizeGraph() did. */
struct RewriteStats
{
    Counter folded = 0;      ///< Ops rewritten to kConst (WS501).
    Counter bypassed = 0;    ///< Single-consumer movs removed (WS503).
    Counter removed = 0;     ///< Dead instructions eliminated (WS502).
    Counter merged = 0;      ///< WS504 merges + entry-mov retargets.
    Counter simplified = 0;  ///< WS505 algebraic rewrites.
    Counter rounds = 0;      ///< Fixpoint iterations.
    Counter rollbacks = 0;   ///< Rounds reverted by the equivalence gate.

    /** Rendered WS8xx findings of the last rollback ("" when none). */
    std::string rollbackDiff;

    bool
    changed() const
    {
        return folded + bypassed + removed + merged + simplified != 0;
    }
};

/** Report every optimization opportunity as WS5xx notes (no rewrite). */
VerifyReport adviseGraph(const DataflowGraph &g);

/**
 * Rewrite @p g in place: constant folding, algebraic simplification,
 * common-subexpression merging, copy-chain bypass, and dead-node
 * elimination, iterated to fixpoint, then id compaction. Wave-ordering
 * chains are never touched (memory ops are liveness roots and never
 * rewrite candidates), so the wave-ordered memory annotations survive
 * verbatim.
 *
 * With opts.verifyEquiv (the default), every round and the final
 * result are proven equivalent to their input by checkEquivalence();
 * unprovable rounds are rolled back (stats.rollbacks, rollbackDiff).
 * Setting WS_REWRITE_SABOTAGE in the environment deliberately corrupts
 * one rewritten instruction — a self-test hook proving the gate works.
 */
RewriteStats optimizeGraph(DataflowGraph &g,
                           const RewriteOptions &opts = RewriteOptions{});

} // namespace ws

#endif // WS_ANALYZE_REWRITER_H_
