/**
 * @file
 * Width/ILP histogram: how many instructions (and how many useful ones
 * — the single AIPC-numerator definition from opcodeClass()) sit at
 * each ASAP level. The peak useful width is the most instruction-level
 * parallelism one wave of the graph can expose to the fabric.
 */

#include <algorithm>

#include "analyze/passes.h"

namespace ws {
namespace analyze_detail {

void
runWidth(const DataflowGraph &g, const Levelization &lv,
         StaticProfile &profile)
{
    if (g.size() == 0)
        return;
    const std::size_t levels = static_cast<std::size_t>(lv.maxLevel) + 1;
    profile.widthHist.assign(levels, 0);
    profile.usefulWidthHist.assign(levels, 0);

    // Per-thread level histograms for the per-thread peaks.
    std::vector<std::vector<Counter>> threadHist(
        profile.threads.size(), std::vector<Counter>(levels, 0));
    std::vector<std::vector<Counter>> threadUsefulHist(
        profile.threads.size(), std::vector<Counter>(levels, 0));

    for (InstId i = 0; i < g.size(); ++i) {
        const Instruction &inst = g.inst(i);
        const std::uint32_t level = lv.asap[i];
        ++profile.widthHist[level];
        const bool useful = isUsefulOp(inst.op);
        if (useful)
            ++profile.usefulWidthHist[level];
        if (inst.thread < threadHist.size()) {
            ++threadHist[inst.thread][level];
            if (useful)
                ++threadUsefulHist[inst.thread][level];
        }
    }

    for (std::size_t l = 0; l < levels; ++l) {
        profile.peakWidth =
            std::max(profile.peakWidth, profile.widthHist[l]);
        profile.peakUsefulWidth = std::max(profile.peakUsefulWidth,
                                           profile.usefulWidthHist[l]);
    }
    for (std::size_t t = 0; t < profile.threads.size(); ++t) {
        ThreadProfile &tp = profile.threads[t];
        for (std::size_t l = 0; l < levels; ++l) {
            tp.peakWidth = std::max(tp.peakWidth, threadHist[t][l]);
            tp.peakUsefulWidth =
                std::max(tp.peakUsefulWidth, threadUsefulHist[t][l]);
        }
    }
    profile.avgUsefulWidth =
        static_cast<double>(profile.mix.useful) /
        static_cast<double>(levels);
}

} // namespace analyze_detail
} // namespace ws
