/**
 * @file
 * WS7xx resource-aware throughput bound.
 *
 * Three layers, from graph to machine:
 *
 *  1. threadCycleRatios(): the exact initiation-interval floor of each
 *     thread's loops as a max cycle ratio — over every dependence cycle
 *     C, max weight(C)/waveAdvances(C) — under a caller-supplied edge
 *     weight model. Solved per SCC by a Lawler parametric search:
 *     binary-search lambda, testing each guess with a Bellman-Ford
 *     positive-cycle detector over w(e) - lambda*[enters a
 *     WAVE_ADVANCE]. The search keeps the invariant "a positive cycle
 *     exists at lo" and returns lo, so the reported ratio never exceeds
 *     the true one: under-estimating lambda over-estimates the wave
 *     rate, which keeps the AIPC bound an upper bound.
 *
 *  2. analyzePlacedProfile(): placement-resolved facts. Edge weights
 *     become dispatch-to-dispatch delivery times — a pod-bypass hop is
 *     1 cycle regardless of the producer's latency (speculative
 *     scheduling), a same-PE hop is the producer's latency, and wider
 *     spans add the TransitFloors under-estimates of the bus/network
 *     paths. This both tightens the bound for spread-out placements
 *     and FIXES a soundness hazard in the old latency-weighted
 *     recurrence: a multi-cycle op's pod partner really does dispatch
 *     the next cycle, so charging the full execute latency per hop
 *     could under-estimate the achievable rate. The pass also counts
 *     the PEs each thread's useful instructions occupy (each PE
 *     dispatches one instruction per cycle, so a thread can never
 *     sustain more AIPC than it has PEs) and records home clusters for
 *     the shared store-buffer ceiling.
 *
 *  3. staticAipcBoundDetail(): per-thread rate ceilings combined with
 *     machine-level caps, every min() remembered as a BoundTerm so the
 *     sweep engine can attribute prunes and the JSON twins can report
 *     which resource a configuration is provably limited by.
 */

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <sstream>
#include <vector>

#include "analyze/passes.h"

namespace ws {

namespace analyze_detail {

namespace {

/** One SCC's view: local node ids, internal edges, wave-advance marks. */
struct SccProblem
{
    std::vector<InstId> nodes;                  ///< Global inst ids.
    std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
    std::vector<double> weight;                 ///< Per edge.
    std::vector<bool> isWaveAdvance;            ///< Per local node.
    std::vector<ThreadId> threads;              ///< Wave-advance owners.
    Counter waveAdvances = 0;
};

/** Tarjan SCC ids (iterative); singletons get an id only when they
 *  self-loop, everything else acyclic gets kNoScc. */
constexpr std::uint32_t kNoScc = 0xffffffffu;

std::vector<std::uint32_t>
sccIds(const DataflowGraph &g,
       const std::vector<std::vector<InstId>> &succ,
       std::uint32_t *scc_count)
{
    const std::size_t n = g.size();
    std::vector<std::uint32_t> index(n, kNoScc);
    std::vector<std::uint32_t> lowlink(n, 0);
    std::vector<std::uint32_t> scc(n, kNoScc);
    std::vector<bool> onStack(n, false);
    std::vector<InstId> sccStack;
    std::vector<std::pair<InstId, std::size_t>> frames;
    std::uint32_t counter = 0;
    std::uint32_t next_scc = 0;

    for (InstId root = 0; root < n; ++root) {
        if (index[root] != kNoScc)
            continue;
        frames.emplace_back(root, 0);
        index[root] = lowlink[root] = counter++;
        sccStack.push_back(root);
        onStack[root] = true;
        while (!frames.empty()) {
            auto &[node, next] = frames.back();
            if (next < succ[node].size()) {
                const InstId s = succ[node][next++];
                if (index[s] == kNoScc) {
                    index[s] = lowlink[s] = counter++;
                    sccStack.push_back(s);
                    onStack[s] = true;
                    frames.emplace_back(s, 0);
                } else if (onStack[s]) {
                    lowlink[node] = std::min(lowlink[node], index[s]);
                }
            } else {
                if (lowlink[node] == index[node]) {
                    std::size_t top = sccStack.size();
                    while (sccStack[top - 1] != node)
                        --top;
                    const std::size_t members = sccStack.size() - top + 1;
                    bool cyclic = members > 1;
                    if (!cyclic) {
                        for (const InstId s : succ[node]) {
                            if (s == node)
                                cyclic = true;
                        }
                    }
                    const std::uint32_t id =
                        cyclic ? next_scc++ : kNoScc;
                    for (std::size_t i = top - 1; i < sccStack.size();
                         ++i) {
                        onStack[sccStack[i]] = false;
                        scc[sccStack[i]] = id;
                    }
                    sccStack.resize(top - 1);
                }
                const InstId finished = node;
                frames.pop_back();
                if (!frames.empty()) {
                    lowlink[frames.back().first] =
                        std::min(lowlink[frames.back().first],
                                 lowlink[finished]);
                }
            }
        }
    }
    *scc_count = next_scc;
    return scc;
}

/**
 * Does a positive-weight cycle exist under w'(e) = w(e) - lambda per
 * wave-advance head? Bellman-Ford longest-path over the SCC: if any
 * node still relaxes after |nodes| rounds, a positive cycle exists.
 */
bool
hasPositiveCycle(const SccProblem &p, double lambda)
{
    const std::size_t n = p.nodes.size();
    std::vector<double> dist(n, 0.0);
    for (std::size_t round = 0; round <= n; ++round) {
        bool relaxed = false;
        for (std::size_t e = 0; e < p.edges.size(); ++e) {
            const auto [u, v] = p.edges[e];
            const double w =
                p.weight[e] - (p.isWaveAdvance[v] ? lambda : 0.0);
            if (dist[u] + w > dist[v] + 1e-12) {
                dist[v] = dist[u] + w;
                relaxed = true;
            }
        }
        if (!relaxed)
            return false;
    }
    return true;
}

/**
 * Max cycle ratio of one SCC: the largest lambda such that some cycle
 * has weight(C) > lambda * waveAdvances(C). Returns the lower (sound)
 * end of the parametric search.
 */
double
sccCycleRatio(const SccProblem &p)
{
    if (p.waveAdvances == 0) {
        // A loop no wave passes through constrains no wave rate. The
        // verifier (WS303) rejects such graphs; analyzing one anyway
        // must stay sound, so report "no recurrence constraint".
        return 0.0;
    }
    double lo = 0.0;
    double hi = 1.0;
    for (const double w : p.weight)
        hi += w;
    // Invariant: positive cycle at lo (lambda* > lo), none at hi.
    // Every cycle has >=1 positive-weight edge per wave advance, so
    // lambda* > 0 and the initial lo is feasible.
    for (int iter = 0; iter < 48 && hi - lo > 1e-9 * hi; ++iter) {
        const double mid = 0.5 * (lo + hi);
        if (hasPositiveCycle(p, mid))
            lo = mid;
        else
            hi = mid;
    }
    return lo;
}

std::vector<std::vector<InstId>>
boundSuccessors(const DataflowGraph &g)
{
    std::vector<std::vector<InstId>> succ(g.size());
    for (InstId i = 0; i < g.size(); ++i) {
        for (const auto &side : g.inst(i).outs) {
            for (const PortRef &out : side)
                succ[i].push_back(out.inst);
        }
    }
    return succ;
}

} // namespace

std::vector<double>
threadCycleRatios(const DataflowGraph &g, const EdgeWeightFn &weight)
{
    std::vector<double> ratios(g.numThreads(), 0.0);
    if (g.size() == 0)
        return ratios;

    const auto succ = boundSuccessors(g);
    std::uint32_t scc_count = 0;
    const std::vector<std::uint32_t> scc = sccIds(g, succ, &scc_count);
    if (scc_count == 0)
        return ratios;

    std::vector<SccProblem> problems(scc_count);
    std::vector<std::uint32_t> local(g.size(), 0);
    for (InstId i = 0; i < g.size(); ++i) {
        if (scc[i] == kNoScc)
            continue;
        SccProblem &p = problems[scc[i]];
        local[i] = static_cast<std::uint32_t>(p.nodes.size());
        p.nodes.push_back(i);
        p.isWaveAdvance.push_back(g.inst(i).op == Opcode::kWaveAdvance);
        if (p.isWaveAdvance.back()) {
            ++p.waveAdvances;
            const ThreadId t = g.inst(i).thread;
            if (std::find(p.threads.begin(), p.threads.end(), t) ==
                p.threads.end()) {
                p.threads.push_back(t);
            }
        }
    }
    for (InstId i = 0; i < g.size(); ++i) {
        if (scc[i] == kNoScc)
            continue;
        SccProblem &p = problems[scc[i]];
        for (const InstId s : succ[i]) {
            if (scc[s] != scc[i])
                continue;
            p.edges.emplace_back(local[i], local[s]);
            p.weight.push_back(weight(i, s));
        }
    }

    for (const SccProblem &p : problems) {
        if (p.waveAdvances == 0)
            continue;
        double lambda = sccCycleRatio(p);
        // Iterative (non-pipelined) integer ops serialize their PE for
        // latency-1 extra cycles between firings, so any cycle through
        // one needs at least that long per lap no matter how its edges
        // are placed.
        for (const InstId i : p.nodes) {
            const OpcodeInfo &info = opcodeInfo(g.inst(i).op);
            if (!info.floatingPoint && info.latency > 1) {
                lambda = std::max(
                    lambda, static_cast<double>(info.latency - 1) /
                                static_cast<double>(p.waveAdvances));
            }
        }
        // The floor applies to EVERY thread owning a wave advance in
        // the SCC: lambda divides by the SCC's total advance count, so
        // it under-estimates each owner's true per-thread interval
        // (weight / own advances) — tighter than leaving the other
        // owners unconstrained, still sound.
        for (const ThreadId t : p.threads) {
            if (t >= ratios.size())
                continue;
            // Sequential loops each gate only their own waves: the
            // weakest (smallest-ratio) loop is the only thread-wide
            // sound floor.
            ratios[t] = ratios[t] == 0.0 ? lambda
                                         : std::min(ratios[t], lambda);
        }
    }
    return ratios;
}

} // namespace analyze_detail

using analyze_detail::threadCycleRatios;

namespace {

/** Dispatch-to-dispatch delivery weight of edge u -> v under @p place. */
double
placedEdgeWeight(const DataflowGraph &g, const Placement &place,
                 const TransitFloors &floors, InstId u, InstId v)
{
    const double lat =
        static_cast<double>(opcodeInfo(g.inst(u).op).latency);
    const PeCoord a = place.home(u);
    const PeCoord b = place.home(v);
    if (a == b)
        return lat;
    if (a.cluster == b.cluster && a.domain == b.domain) {
        // Same pod = adjacent even/odd PE pair within the domain.
        if (floors.podBypass && (a.pe >> 1) == (b.pe >> 1))
            return 1.0;  // Speculative bypass beats the latency.
        return lat + floors.domain;
    }
    if (a.cluster == b.cluster)
        return lat + floors.cluster;
    return lat + floors.grid;
}

} // namespace

PlacedProfile
analyzePlacedProfile(const DataflowGraph &g, const Placement &placement,
                     const TransitFloors &floors)
{
    PlacedProfile placed;
    placed.spans = placement.edgeSpans(g);
    placed.threads.resize(g.numThreads());
    for (ThreadId t = 0; t < g.numThreads(); ++t)
        placed.threads[t].thread = t;
    if (g.size() == 0)
        return placed;

    // PE occupancy: how many PEs host each thread's useful work, and
    // how much of it piles onto the most loaded one.
    std::map<std::pair<ThreadId, std::uint64_t>, Counter> pe_load;
    for (InstId i = 0; i < g.size(); ++i) {
        const Instruction &inst = g.inst(i);
        if (!isUsefulOp(inst.op) || inst.thread >= placed.threads.size())
            continue;
        const PeCoord home = placement.home(i);
        const std::uint64_t pe_key =
            (static_cast<std::uint64_t>(home.cluster) << 32) |
            (static_cast<std::uint64_t>(home.domain) << 16) | home.pe;
        ++pe_load[{inst.thread, pe_key}];
    }
    for (const auto &[key, load] : pe_load) {
        PlacedThreadStats &ts = placed.threads[key.first];
        ++ts.usefulPes;
        ts.maxPeUsefulLoad = std::max(ts.maxPeUsefulLoad, load);
    }
    for (ThreadId t = 0; t < g.numThreads(); ++t)
        placed.threads[t].homeCluster = placement.threadHomeCluster(t);

    // Transit-weighted recurrence (the placed initiation interval).
    const std::vector<double> ratios = threadCycleRatios(
        g, [&](InstId u, InstId v) {
            return placedEdgeWeight(g, placement, floors, u, v);
        });
    for (ThreadId t = 0; t < g.numThreads(); ++t)
        placed.threads[t].lambda = ratios[t];

    // Transit-weighted critical path over the DAG (back edges of loops
    // dropped, exactly as levelize() classifies them): the earliest
    // dispatch time of each instruction under the same delivery model,
    // so acyclic threads see honest depths on spread-out placements.
    // Only the ASAP levels are needed here; the placed recurrence was
    // just computed above under placed weights, so skip levelize()'s
    // unit-weight cycle-ratio search.
    const analyze_detail::Levelization lv =
        analyze_detail::levelize(g, /*cycleRatios=*/false);
    std::vector<std::vector<InstId>> succ(g.size());
    for (InstId i = 0; i < g.size(); ++i) {
        for (const auto &side : g.inst(i).outs) {
            for (const PortRef &out : side) {
                // Every DAG edge strictly raises the ASAP level, so a
                // non-increasing edge is cycle-closing: drop it. (A
                // dropped edge can only shrink depths, which keeps the
                // useful/depth bound an over-estimate — sound.)
                if (lv.asap[out.inst] > lv.asap[i])
                    succ[i].push_back(out.inst);
            }
        }
    }
    // Ascending-asap is a topological order of the kept edges.
    std::vector<InstId> order(g.size());
    for (InstId i = 0; i < g.size(); ++i)
        order[i] = i;
    std::stable_sort(order.begin(), order.end(),
                     [&](InstId a, InstId b) {
                         return lv.asap[a] < lv.asap[b];
                     });
    std::vector<double> start(g.size(), 1.0);
    for (const InstId i : order) {
        for (const InstId s : succ[i]) {
            start[s] = std::max(
                start[s],
                start[i] + placedEdgeWeight(g, placement, floors, i, s));
        }
    }
    for (InstId i = 0; i < g.size(); ++i) {
        const ThreadId t = g.inst(i).thread;
        if (t < placed.threads.size()) {
            placed.threads[t].placedDepth =
                std::max(placed.threads[t].placedDepth, start[i]);
        }
    }
    return placed;
}

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/** Per-thread ingredients shared by the free and placed bounds. */
struct ThreadTerm
{
    double bound = 0.0;
    BoundTerm binding = BoundTerm::kNone;
    double lambda = 0.0;
    double waveRate = 0.0;   ///< Waves/cycle ceiling (kInf = none).
    double depth = 1.0;
    // For the shared store-buffer reduction (cyclic threads only):
    double wavePart = 0.0;   ///< perWave * waveRate contribution.
    double oncePart = 0.0;   ///< once / depth contribution.
    double chainLen = 0.0;   ///< SB ops one wave must retire (>=0).
    bool cyclic = false;
};

/** Track a running min() while remembering which term set it. */
void
applyCap(double cap, BoundTerm term, double *value, BoundTerm *binding)
{
    if (cap < *value) {
        *value = cap;
        *binding = term;
    }
}

ThreadTerm
threadBound(const ThreadProfile &tp, const PlacedThreadStats *ts,
            const MachineBoundParams &m)
{
    ThreadTerm term;
    const double useful = static_cast<double>(tp.mix.useful);
    if (useful == 0.0)
        return term;

    term.cyclic = tp.cyclic;
    if (!tp.cyclic) {
        // Straight-line thread: every instruction fires once, across at
        // least the critical path. Placement-free, the depth is the hop
        // count when pod bypass can hide latencies, the latency-
        // weighted path when it cannot; placed, it is the transit-
        // weighted dispatch time. Either way the most loaded PE also
        // serializes its share at one dispatch per cycle.
        double depth = m.podBypass
                           ? static_cast<double>(
                                 std::max<Counter>(tp.levels, 1))
                           : static_cast<double>(std::max<Counter>(
                                 tp.critPathLatency, 1));
        term.binding = BoundTerm::kDepth;
        if (ts != nullptr) {
            depth = std::max(
                {ts->placedDepth, 1.0,
                 static_cast<double>(ts->maxPeUsefulLoad)});
            if (static_cast<double>(ts->maxPeUsefulLoad) > ts->placedDepth)
                term.binding = BoundTerm::kPeOccupancy;
        }
        term.depth = depth;
        term.bound = useful / depth;
        term.oncePart = term.bound;
    } else {
        // Looping thread: waves retire at rate r, re-executing the
        // per-wave instructions; the one-shot remainder amortizes over
        // the critical path.
        term.lambda = ts != nullptr
                          ? ts->lambda
                          : tp.cycleRatio;
        term.waveRate = kInf;
        BoundTerm rate_term = BoundTerm::kNone;
        if (term.lambda > 0.0) {
            term.waveRate = 1.0 / term.lambda;
            rate_term = BoundTerm::kRecurrence;
        }
        term.chainLen = static_cast<double>(tp.minChainLen);
        if (tp.minChainLen > 0) {
            applyCap(m.sbIssueWidth / term.chainLen,
                     BoundTerm::kStoreBuffer, &term.waveRate,
                     &rate_term);
        }
        const double perWave = static_cast<double>(tp.perWaveUseful);
        const double once = useful - perWave;
        term.depth = static_cast<double>(
            std::max<Counter>(tp.critPathLatency, 1));
        term.wavePart =
            term.waveRate == kInf ? perWave : perWave * term.waveRate;
        term.oncePart = once / term.depth;
        term.bound = useful;
        term.binding = BoundTerm::kUseful;
        applyCap(term.wavePart + term.oncePart,
                 rate_term == BoundTerm::kNone ? BoundTerm::kUseful
                                               : rate_term,
                 &term.bound, &term.binding);
    }
    if (ts != nullptr && ts->usefulPes > 0) {
        applyCap(static_cast<double>(ts->usefulPes),
                 BoundTerm::kPeOccupancy, &term.bound, &term.binding);
    }
    return term;
}

BoundBreakdown
combineBounds(const StaticProfile &profile, const PlacedProfile *placed,
              const MachineBoundParams &m)
{
    BoundBreakdown b;
    b.placed = placed != nullptr;
    b.machineCap = m.totalPes;

    std::vector<ThreadTerm> terms(profile.threads.size());
    for (std::size_t i = 0; i < profile.threads.size(); ++i) {
        const PlacedThreadStats *ts =
            placed != nullptr && i < placed->threads.size()
                ? &placed->threads[i]
                : nullptr;
        terms[i] = threadBound(profile.threads[i], ts, m);
        BoundBreakdown::Thread bt;
        bt.thread = profile.threads[i].thread;
        bt.bound = terms[i].bound;
        bt.binding = terms[i].binding;
        bt.lambda = terms[i].lambda;
        bt.waveRate = terms[i].waveRate == kInf ? 0.0 : terms[i].waveRate;
        bt.depth = terms[i].depth;
        b.threads.push_back(bt);
    }

    double sum = 0.0;
    for (const ThreadTerm &t : terms)
        sum += t.bound;
    b.threadSum = sum;

    // Shared store buffer: threads homed on one cluster split that
    // store buffer's issueWidth. The fractional-knapsack relaxation —
    // hand bandwidth to the threads that convert it into the most
    // useful work first — upper-bounds any schedule the hardware could
    // achieve, so replacing the group's solo bounds with the shared
    // group total keeps the bound sound while making 1-cluster
    // many-thread configs honestly slower.
    double shared_adjust = 0.0;
    if (placed != nullptr) {
        std::map<ClusterId, std::vector<std::size_t>> by_cluster;
        for (std::size_t i = 0; i < terms.size(); ++i) {
            if (terms[i].cyclic && terms[i].chainLen > 0.0 &&
                terms[i].bound > 0.0 &&
                i < placed->threads.size()) {
                by_cluster[placed->threads[i].homeCluster].push_back(i);
            }
        }
        for (const auto &[cluster, idx] : by_cluster) {
            if (idx.size() < 2)
                continue;
            // A member's solo bound may already sit BELOW its
            // wavePart + oncePart (useful- or PE-occupancy-capped), so
            // the group total is rebuilt member by member as
            // min(bound_i, oncePart_i + allocated wave work_i) rather
            // than subtracting wave terms that were never fully in the
            // sum — subtracting blindly could undercut the achievable
            // rate (even go negative) and prune a group's true winner.
            //
            // Per member: floor_i = throughput at zero wave rate (never
            // above the solo bound), capW_i = wave-work headroom the
            // solo bound leaves, perWave_i = useful work one wave
            // retires (waveRate is finite here: chainLen > 0 applied
            // the private sbIssueWidth/chainLen cap).
            double solo = 0.0;
            std::vector<double> floor_part(idx.size(), 0.0);
            std::vector<double> per_wave(idx.size(), 0.0);
            std::vector<double> cap_w(idx.size(), 0.0);
            for (std::size_t k = 0; k < idx.size(); ++k) {
                const ThreadTerm &t = terms[idx[k]];
                solo += t.bound;
                floor_part[k] = std::min(t.bound, t.oncePart);
                if (t.waveRate > 0.0 && t.waveRate != kInf &&
                    t.wavePart > 0.0) {
                    per_wave[k] = t.wavePart / t.waveRate;
                    cap_w[k] = std::min(
                        t.wavePart, std::max(0.0, t.bound - t.oncePart));
                }
            }
            // Optimal fractional allocation of the shared issueWidth:
            // each member's objective is concave piecewise-linear in
            // its rate (slope perWave until the solo bound saturates,
            // then 0), so greedy by useful work per unit of retire
            // bandwidth (perWave/chainLen) is exact for the LP
            // relaxation, and the relaxation upper-bounds any schedule
            // the hardware could achieve — sound to substitute.
            std::vector<std::size_t> order(idx.size());
            for (std::size_t k = 0; k < idx.size(); ++k)
                order[k] = k;
            std::stable_sort(
                order.begin(), order.end(),
                [&](std::size_t ka, std::size_t kb) {
                    const double da =
                        per_wave[ka] / terms[idx[ka]].chainLen;
                    const double db =
                        per_wave[kb] / terms[idx[kb]].chainLen;
                    return da > db;
                });
            double budget = m.sbIssueWidth;
            double shared = 0.0;
            for (const std::size_t k : order) {
                shared += floor_part[k];
                if (budget <= 0.0 || cap_w[k] <= 0.0 ||
                    per_wave[k] <= 0.0) {
                    continue;
                }
                // Wave work w costs w * chainLen / perWave issue slots.
                const double chain = terms[idx[k]].chainLen;
                const double w = std::min(
                    cap_w[k], budget * per_wave[k] / chain);
                shared += w;
                budget -= w * chain / per_wave[k];
            }
            // floor_i + capW_i <= bound_i per member, so shared <= solo
            // by construction and the adjustment can never push the
            // group below its achievable total.
            if (shared < solo) {
                BoundBreakdown::SharedSb s;
                s.cluster = cluster;
                s.unshared = solo;
                s.shared = shared;
                b.sbShared.push_back(s);
                shared_adjust += solo - shared;
            }
        }
    }

    // Attribute the whole-machine bound: the per-thread sum, reduced by
    // store-buffer sharing, capped by machine issue width.
    BoundTerm binding = BoundTerm::kNone;
    if (!b.threads.empty()) {
        // Dominant per-thread term: the binding constraint of the
        // thread contributing the most to the sum.
        double best = -1.0;
        for (const BoundBreakdown::Thread &t : b.threads) {
            if (t.bound > best) {
                best = t.bound;
                binding = t.binding;
            }
        }
    }
    double bound = sum;
    if (shared_adjust > 0.0) {
        bound -= shared_adjust;
        binding = BoundTerm::kSbShared;
    }
    if (m.totalPes < bound) {
        bound = m.totalPes;
        binding = BoundTerm::kMachineIssue;
    }
    b.bound = bound;
    b.binding = binding;
    return b;
}

} // namespace

const char *
boundTermName(BoundTerm term)
{
    switch (term) {
      case BoundTerm::kNone:         return "none";
      case BoundTerm::kUseful:       return "useful";
      case BoundTerm::kDepth:        return "depth";
      case BoundTerm::kRecurrence:   return "recurrence";
      case BoundTerm::kStoreBuffer:  return "store-buffer";
      case BoundTerm::kSbShared:     return "sb-shared";
      case BoundTerm::kPeOccupancy:  return "pe-occupancy";
      case BoundTerm::kMachineIssue: return "machine-issue";
    }
    return "none";
}

BoundBreakdown
staticAipcBoundDetail(const StaticProfile &profile,
                      const MachineBoundParams &m)
{
    return combineBounds(profile, nullptr, m);
}

BoundBreakdown
staticAipcBoundDetail(const StaticProfile &profile,
                      const PlacedProfile &placed,
                      const MachineBoundParams &m)
{
    return combineBounds(profile, &placed, m);
}

double
staticAipcBound(const StaticProfile &profile, const MachineBoundParams &m)
{
    return staticAipcBoundDetail(profile, m).bound;
}

double
staticAipcBound(const StaticProfile &profile, const PlacedProfile &placed,
                const MachineBoundParams &m)
{
    return staticAipcBoundDetail(profile, placed, m).bound;
}

std::string
renderBound(const BoundBreakdown &b)
{
    std::ostringstream out;
    out.setf(std::ios::fixed);
    out.precision(3);
    out << "  bound " << b.bound << " aipc ("
        << (b.placed ? "placed" : "placement-free") << ", binding: "
        << boundTermName(b.binding) << ", thread sum " << b.threadSum
        << ", machine cap " << b.machineCap << ")\n";
    for (const BoundBreakdown::Thread &t : b.threads) {
        out << "    t" << t.thread << ": " << t.bound << " via "
            << boundTermName(t.binding);
        if (t.lambda > 0.0)
            out << ", lambda " << t.lambda;
        if (t.waveRate > 0.0)
            out << ", wave rate " << t.waveRate;
        out << ", depth " << t.depth << "\n";
    }
    for (const BoundBreakdown::SharedSb &s : b.sbShared) {
        out << "    cluster " << s.cluster << " store buffer shared: "
            << s.unshared << " -> " << s.shared << "\n";
    }
    return out.str();
}

Json
boundToJson(const BoundBreakdown &b)
{
    Json j = Json::object();
    j["bound"] = b.bound;
    j["binding"] = std::string(boundTermName(b.binding));
    j["placed"] = b.placed;
    j["thread_sum"] = b.threadSum;
    j["machine_cap"] = b.machineCap;
    Json threads = Json::array();
    for (const BoundBreakdown::Thread &t : b.threads) {
        Json tj = Json::object();
        tj["thread"] = static_cast<std::uint64_t>(t.thread);
        tj["bound"] = t.bound;
        tj["binding"] = std::string(boundTermName(t.binding));
        tj["lambda"] = t.lambda;
        tj["wave_rate"] = t.waveRate;
        tj["depth"] = t.depth;
        threads.push(std::move(tj));
    }
    j["threads"] = std::move(threads);
    Json shared = Json::array();
    for (const BoundBreakdown::SharedSb &s : b.sbShared) {
        Json sj = Json::object();
        sj["cluster"] = static_cast<std::uint64_t>(s.cluster);
        sj["unshared"] = s.unshared;
        sj["shared"] = s.shared;
        shared.push(std::move(sj));
    }
    j["sb_shared"] = std::move(shared);
    return j;
}

} // namespace ws
