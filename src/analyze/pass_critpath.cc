/**
 * @file
 * Levelization: ASAP/ALAP levels, the latency-weighted critical path,
 * and the loop shape of each thread.
 *
 * Dataflow loops (wave recurrences) make the raw graph cyclic, so the
 * pass first classifies cycle-closing edges with a DFS and levelizes
 * the remaining DAG. Cycle membership (via Tarjan SCCs) then tells the
 * bound which instructions re-execute every wave, and a shortest-cycle
 * search through each WAVE_ADVANCE yields the initiation-interval
 * floor: no machine can start waves faster than the loop-carried
 * dependency allows.
 */

#include <algorithm>
#include <queue>
#include <utility>

#include "analyze/passes.h"

namespace ws {
namespace analyze_detail {

namespace {

std::uint8_t
latencyOf(const Instruction &inst)
{
    return opcodeInfo(inst.op).latency;
}

std::vector<std::vector<InstId>>
successors(const DataflowGraph &g)
{
    std::vector<std::vector<InstId>> succ(g.size());
    for (InstId i = 0; i < g.size(); ++i) {
        for (const auto &side : g.inst(i).outs) {
            for (const PortRef &out : side)
                succ[i].push_back(out.inst);
        }
    }
    return succ;
}

/**
 * Iterative DFS: classify back edges (target is on the current stack)
 * and emit a postorder. Reverse postorder is a topological order of
 * the graph minus its back edges.
 */
struct DfsResult
{
    std::vector<std::vector<InstId>> dagSucc;  ///< Minus back edges.
    std::vector<InstId> postorder;
    Counter backEdges = 0;
};

DfsResult
classifyEdges(const DataflowGraph &g,
              const std::vector<std::vector<InstId>> &succ)
{
    enum : std::uint8_t { kWhite, kGray, kBlack };
    DfsResult res;
    res.dagSucc.resize(g.size());
    std::vector<std::uint8_t> color(g.size(), kWhite);
    std::vector<std::pair<InstId, std::size_t>> stack;

    for (InstId root = 0; root < g.size(); ++root) {
        if (color[root] != kWhite)
            continue;
        color[root] = kGray;
        stack.emplace_back(root, 0);
        while (!stack.empty()) {
            auto &[node, next] = stack.back();
            if (next < succ[node].size()) {
                const InstId s = succ[node][next++];
                if (color[s] == kGray) {
                    ++res.backEdges;  // Cycle-closing: drop from DAG.
                } else {
                    res.dagSucc[node].push_back(s);
                    if (color[s] == kWhite) {
                        color[s] = kGray;
                        stack.emplace_back(s, 0);
                    }
                }
            } else {
                color[node] = kBlack;
                res.postorder.push_back(node);
                stack.pop_back();
            }
        }
    }
    return res;
}

/** Tarjan SCCs, iteratively: mark instructions that sit on any cycle
 *  (SCC of size > 1, or a self-loop). */
std::vector<bool>
cycleMembers(const DataflowGraph &g,
             const std::vector<std::vector<InstId>> &succ)
{
    const std::size_t n = g.size();
    constexpr std::uint32_t kUnvisited = 0xffffffffu;
    std::vector<std::uint32_t> index(n, kUnvisited);
    std::vector<std::uint32_t> lowlink(n, 0);
    std::vector<bool> onStack(n, false);
    std::vector<bool> inCycle(n, false);
    std::vector<InstId> sccStack;
    std::vector<std::pair<InstId, std::size_t>> frames;
    std::uint32_t counter = 0;

    for (InstId root = 0; root < n; ++root) {
        if (index[root] != kUnvisited)
            continue;
        frames.emplace_back(root, 0);
        index[root] = lowlink[root] = counter++;
        sccStack.push_back(root);
        onStack[root] = true;
        while (!frames.empty()) {
            auto &[node, next] = frames.back();
            if (next < succ[node].size()) {
                const InstId s = succ[node][next++];
                if (index[s] == kUnvisited) {
                    index[s] = lowlink[s] = counter++;
                    sccStack.push_back(s);
                    onStack[s] = true;
                    frames.emplace_back(s, 0);
                } else if (onStack[s]) {
                    lowlink[node] = std::min(lowlink[node], index[s]);
                }
            } else {
                if (lowlink[node] == index[node]) {
                    std::size_t members = 0;
                    std::size_t top = sccStack.size();
                    while (sccStack[top - 1] != node)
                        --top;
                    members = sccStack.size() - top;
                    for (std::size_t i = top - 1; i < sccStack.size();
                         ++i) {
                        onStack[sccStack[i]] = false;
                        if (members + 1 > 1)
                            inCycle[sccStack[i]] = true;
                    }
                    if (members + 1 == 1) {
                        // Singleton: on a cycle only if it self-loops.
                        inCycle[node] = false;
                        for (const InstId s : succ[node]) {
                            if (s == node)
                                inCycle[node] = true;
                        }
                    }
                    sccStack.resize(top - 1);
                }
                const InstId finished = node;
                frames.pop_back();
                if (!frames.empty()) {
                    lowlink[frames.back().first] =
                        std::min(lowlink[frames.back().first],
                                 lowlink[finished]);
                }
            }
        }
    }
    return inCycle;
}

/**
 * Shortest cycle latency through @p start (a WAVE_ADVANCE on a cycle):
 * Dijkstra where reaching node x costs the sum of execute latencies of
 * every node after @p start up to and including x. Returning to start
 * closes the recurrence; its latency is added on arrival.
 */
Counter
shortestCycleThrough(const DataflowGraph &g,
                     const std::vector<std::vector<InstId>> &succ,
                     InstId start)
{
    constexpr Counter kInf = ~Counter{0};
    std::vector<Counter> dist(g.size(), kInf);
    using Entry = std::pair<Counter, InstId>;
    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> pq;
    Counter best = kInf;

    for (const InstId s : succ[start]) {
        const Counter d = s == start
                              ? Counter{latencyOf(g.inst(start))}
                              : Counter{latencyOf(g.inst(s))};
        if (s == start) {
            best = std::min(best, d);  // Self-loop.
            continue;
        }
        if (d < dist[s]) {
            dist[s] = d;
            pq.emplace(d, s);
        }
    }
    while (!pq.empty()) {
        const auto [d, node] = pq.top();
        pq.pop();
        if (d != dist[node] || d >= best)
            continue;
        for (const InstId s : succ[node]) {
            if (s == start) {
                best = std::min(best,
                                d + Counter{latencyOf(g.inst(start))});
                continue;
            }
            const Counter nd = d + Counter{latencyOf(g.inst(s))};
            if (nd < dist[s]) {
                dist[s] = nd;
                pq.emplace(nd, s);
            }
        }
    }
    return best == kInf ? 0 : best;
}

} // namespace

Levelization
levelize(const DataflowGraph &g, bool cycleRatios)
{
    const std::size_t n = g.size();
    Levelization lv;
    lv.asap.assign(n, 0);
    lv.alap.assign(n, 0);
    lv.depth.assign(n, 0);
    lv.minCycleLatency.assign(g.numThreads(), 0);
    if (n == 0)
        return lv;

    const auto succ = successors(g);
    const DfsResult dfs = classifyEdges(g, succ);
    lv.backEdges = dfs.backEdges;

    // ASAP levels and latency-weighted depths, in topological order
    // (reverse postorder of the DAG).
    for (auto it = dfs.postorder.rbegin(); it != dfs.postorder.rend();
         ++it) {
        const InstId i = *it;
        lv.depth[i] += latencyOf(g.inst(i));
        lv.maxLevel = std::max(lv.maxLevel, lv.asap[i]);
        for (const InstId s : dfs.dagSucc[i]) {
            lv.asap[s] = std::max(lv.asap[s], lv.asap[i] + 1);
            lv.depth[s] = std::max(lv.depth[s], lv.depth[i]);
        }
    }

    // ALAP: longest unit path to any DAG leaf, in postorder.
    std::vector<std::uint32_t> toLeaf(n, 0);
    for (const InstId i : dfs.postorder) {
        for (const InstId s : dfs.dagSucc[i])
            toLeaf[i] = std::max(toLeaf[i], toLeaf[s] + 1);
    }
    for (InstId i = 0; i < n; ++i)
        lv.alap[i] = lv.maxLevel - toLeaf[i];

    // Loop shape: cycle members, then everything downstream of one
    // (those instructions re-execute every wave).
    lv.inCycle = cycleMembers(g, succ);
    lv.perWave = lv.inCycle;
    std::vector<InstId> worklist;
    for (InstId i = 0; i < n; ++i) {
        if (lv.perWave[i])
            worklist.push_back(i);
    }
    while (!worklist.empty()) {
        const InstId i = worklist.back();
        worklist.pop_back();
        for (const InstId s : succ[i]) {
            if (!lv.perWave[s]) {
                lv.perWave[s] = true;
                worklist.push_back(s);
            }
        }
    }

    // Placement-free initiation-interval floor per thread: the max
    // cycle ratio under unit edge weights (every dependence hop costs
    // at least one cycle, even a pod-bypass hop). See pass_bound.cc.
    // The parametric search is the priciest piece of levelization, so
    // callers that never read it can opt out.
    if (cycleRatios) {
        lv.cycleRatio =
            threadCycleRatios(g, [](InstId, InstId) { return 1.0; });
    }

    // Legacy probe, kept for reports: shortest LATENCY-weighted cycle
    // through a WAVE_ADVANCE. Not a sound II floor under pod bypass
    // (a multi-cycle op's pod partner dispatches the next cycle), so
    // the bound uses cycleRatio; this stays descriptive.
    for (InstId i = 0; i < n; ++i) {
        if (g.inst(i).op != Opcode::kWaveAdvance || !lv.inCycle[i])
            continue;
        const Counter lambda = shortestCycleThrough(g, succ, i);
        if (lambda == 0)
            continue;
        const ThreadId t = g.inst(i).thread;
        if (t < lv.minCycleLatency.size()) {
            lv.minCycleLatency[t] =
                lv.minCycleLatency[t] == 0
                    ? lambda
                    : std::min(lv.minCycleLatency[t], lambda);
        }
    }
    return lv;
}

void
runCritPath(const DataflowGraph &g, const Levelization &lv,
            StaticProfile &profile)
{
    profile.asap = lv.asap;
    profile.alap = lv.alap;
    profile.backEdges = lv.backEdges;
    profile.levels = g.size() == 0 ? 0 : Counter{lv.maxLevel} + 1;

    for (InstId i = 0; i < g.size(); ++i) {
        const Instruction &inst = g.inst(i);
        profile.critPathLatency =
            std::max(profile.critPathLatency, lv.depth[i]);
        if (inst.thread >= profile.threads.size())
            continue;
        ThreadProfile &tp = profile.threads[inst.thread];
        tp.critPathLatency = std::max(tp.critPathLatency, lv.depth[i]);
        tp.levels = std::max(tp.levels, Counter{lv.asap[i]} + 1);
        if (lv.inCycle[i])
            tp.cyclic = true;
        if (lv.perWave[i]) {
            if (isUsefulOp(inst.op))
                ++tp.perWaveUseful;
            if (isMemoryOp(inst.op))
                ++tp.perWaveMemOps;
        }
    }
    for (ThreadProfile &tp : profile.threads) {
        if (tp.thread < lv.minCycleLatency.size())
            tp.minCycleLatency = lv.minCycleLatency[tp.thread];
        if (tp.thread < lv.cycleRatio.size())
            tp.cycleRatio = lv.cycleRatio[tp.thread];
    }
}

} // namespace analyze_detail
} // namespace ws
