/**
 * @file
 * Symbolic equivalence checker (see equiv.h for the proof strategy).
 *
 * Layout of one check:
 *
 *   1. Build a combined entity universe over both graphs: one SOURCE
 *      entity per output side of every instruction, one PORT entity
 *      per input port, and one shared TOKEN entity per distinct
 *      (thread, wave, value) initial-token key.
 *   2. Pre-passes (partition independent): forward constant
 *      propagation (constVal / portConstant) and wave-chain
 *      positions.
 *   3. Optimistic joint refinement of VAL (value stream) and SUPP
 *      (tag support) partitions, with alias resolution so mov chains,
 *      identity forwards, and single-feeder ports collapse onto their
 *      sources instead of forming distinct classes.
 *   4. Checks: completion structure (WS803), wave-ordered memory
 *      effects (WS802), and per-sink value streams (WS801) with a
 *      lockstep backward walk for a minimal diverging witness.
 */

#include "analyze/equiv.h"

#include <algorithm>
#include <array>
#include <cstdint>
#include <optional>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "isa/exec.h"
#include "verify/passes.h"

namespace ws {
namespace {

using verify_detail::msgf;

constexpr std::uint32_t kUnset = 0xffffffffu;

// --------------------------------------------------------------- universe

enum class Kind : std::uint8_t
{
    kToken,   ///< One distinct (thread, wave, value) initial-token key.
    kSource,  ///< One output side of one instruction.
    kPort,    ///< One input port of one instruction.
};

struct Entity
{
    Kind kind;
    std::uint8_t graph = 0;  ///< 0 = a, 1 = b (tokens: unused).
    InstId inst = 0;         ///< Owner (tokens: token-key index).
    std::uint8_t slot = 0;   ///< Source: side. Port: port index.
};

using TokenKey = std::tuple<ThreadId, WaveNum, Value>;

/** Per-graph instruction facts and entity ids. */
struct GraphSide
{
    const DataflowGraph *g = nullptr;
    std::vector<std::uint32_t> src0;                 ///< Side-0 sources.
    std::vector<std::uint32_t> src1;                 ///< Steer side-1.
    std::vector<std::array<std::uint32_t, 3>> port;  ///< Input ports.
    std::vector<std::optional<Value>> constVal;      ///< Per instruction.
    std::vector<std::array<std::optional<Value>, 3>> portConst;
    std::vector<std::uint32_t> chainId;   ///< Chain ordinal in thread.
    std::vector<std::uint32_t> chainPos;  ///< Position within chain.
};

struct Universe
{
    std::vector<Entity> ents;
    std::vector<TokenKey> tokenKeys;
    /** Port entity id -> feeder entity ids (sources and tokens), in
     *  deterministic scan order, duplicates preserved (multiset). */
    std::vector<std::vector<std::uint32_t>> feeders;
    GraphSide side[2];
};

void
collectTokenKeys(const DataflowGraph &g, std::vector<TokenKey> &keys)
{
    for (const Token &t : g.initialTokens())
        keys.emplace_back(t.tag.thread, t.tag.wave, t.value);
}

Universe
buildUniverse(const DataflowGraph &a, const DataflowGraph &b)
{
    Universe u;
    collectTokenKeys(a, u.tokenKeys);
    collectTokenKeys(b, u.tokenKeys);
    std::sort(u.tokenKeys.begin(), u.tokenKeys.end());
    u.tokenKeys.erase(
        std::unique(u.tokenKeys.begin(), u.tokenKeys.end()),
        u.tokenKeys.end());
    for (std::uint32_t k = 0; k < u.tokenKeys.size(); ++k)
        u.ents.push_back(Entity{Kind::kToken, 0, k, 0});

    for (int gi = 0; gi < 2; ++gi) {
        GraphSide &side = u.side[gi];
        side.g = (gi == 0) ? &a : &b;
        const DataflowGraph &g = *side.g;
        side.src0.assign(g.size(), kUnset);
        side.src1.assign(g.size(), kUnset);
        side.port.assign(g.size(), {kUnset, kUnset, kUnset});
        for (InstId i = 0; i < g.size(); ++i) {
            const Instruction &inst = g.inst(i);
            side.src0[i] = static_cast<std::uint32_t>(u.ents.size());
            u.ents.push_back(
                Entity{Kind::kSource, static_cast<std::uint8_t>(gi), i, 0});
            if (inst.isSteer()) {
                side.src1[i] = static_cast<std::uint32_t>(u.ents.size());
                u.ents.push_back(Entity{Kind::kSource,
                                        static_cast<std::uint8_t>(gi), i, 1});
            }
            for (std::uint8_t p = 0; p < inst.arity(); ++p) {
                side.port[i][p] = static_cast<std::uint32_t>(u.ents.size());
                u.ents.push_back(Entity{Kind::kPort,
                                        static_cast<std::uint8_t>(gi), i, p});
            }
        }
    }

    // Feeder lists: producer edges first (instruction order), then
    // initial tokens (token order) — a stable multiset per port.
    u.feeders.assign(u.ents.size(), {});
    for (int gi = 0; gi < 2; ++gi) {
        GraphSide &side = u.side[gi];
        const DataflowGraph &g = *side.g;
        for (InstId i = 0; i < g.size(); ++i) {
            const Instruction &inst = g.inst(i);
            for (int s = 0; s < 2; ++s) {
                const std::uint32_t src =
                    (s == 0) ? side.src0[i] : side.src1[i];
                for (const PortRef &out : inst.outs[s]) {
                    if (out.inst < g.size() && out.port < 3 &&
                        side.port[out.inst][out.port] != kUnset) {
                        u.feeders[side.port[out.inst][out.port]].push_back(
                            src);
                    }
                }
            }
        }
        for (const Token &t : g.initialTokens()) {
            if (t.dst.inst < g.size() && t.dst.port < 3 &&
                side.port[t.dst.inst][t.dst.port] != kUnset) {
                const TokenKey key{t.tag.thread, t.tag.wave, t.value};
                const auto it = std::lower_bound(
                    u.tokenKeys.begin(), u.tokenKeys.end(), key);
                u.feeders[side.port[t.dst.inst][t.dst.port]].push_back(
                    static_cast<std::uint32_t>(it - u.tokenKeys.begin()));
            }
        }
    }
    return u;
}

// -------------------------------------------------------------- pre-passes

/** Known-constant value of every feeder of (inst, port), if they agree. */
std::optional<Value>
feederConst(const Universe &u, int gi, InstId i, std::uint8_t p)
{
    const GraphSide &side = u.side[gi];
    const std::uint32_t pe = side.port[i][p];
    if (pe == kUnset || u.feeders[pe].empty())
        return std::nullopt;
    std::optional<Value> agreed;
    for (const std::uint32_t f : u.feeders[pe]) {
        const Entity &e = u.ents[f];
        std::optional<Value> v;
        if (e.kind == Kind::kToken)
            v = std::get<2>(u.tokenKeys[e.inst]);
        else
            v = side.constVal[e.inst];
        if (!v || (agreed && *agreed != *v))
            return std::nullopt;
        agreed = v;
    }
    return agreed;
}

/** One forward constant-propagation step for instruction @p i. */
std::optional<Value>
stepConst(const Universe &u, int gi, InstId i)
{
    const DataflowGraph &g = *u.side[gi].g;
    const Instruction &inst = g.inst(i);
    switch (inst.op) {
      case Opcode::kConst:
        return inst.imm;
      case Opcode::kMov:
      case Opcode::kWaveAdvance:
      case Opcode::kSteer:
        return feederConst(u, gi, i, 0);
      case Opcode::kSelect: {
        const auto pred = feederConst(u, gi, i, 0);
        if (pred)
            return feederConst(u, gi, i, (*pred != 0) ? 1 : 2);
        return std::nullopt;
      }
      default:
        break;
    }
    if (isMemoryOp(inst.op) || inst.op == Opcode::kSink ||
        inst.op == Opcode::kNop) {
        return std::nullopt;
    }
    // Pure compute (register and immediate forms). Annihilators first:
    // they need only one known operand.
    std::array<std::optional<Value>, 3> in;
    for (std::uint8_t p = 0; p < inst.arity(); ++p)
        in[p] = feederConst(u, gi, i, p);
    if ((inst.op == Opcode::kMul || inst.op == Opcode::kAnd) &&
        ((in[0] && *in[0] == 0) || (in[1] && *in[1] == 0))) {
        return Value{0};
    }
    if ((inst.op == Opcode::kMuli || inst.op == Opcode::kAndi) &&
        inst.imm == 0 && !u.feeders[u.side[gi].port[i][0]].empty()) {
        return Value{0};
    }
    Operands ops{};
    for (std::uint8_t p = 0; p < inst.arity(); ++p) {
        if (!in[p])
            return std::nullopt;
        ops[p] = *in[p];
    }
    return evaluate(inst.op, inst.imm, ops);
}

void
propagateConstants(Universe &u)
{
    for (int gi = 0; gi < 2; ++gi) {
        GraphSide &side = u.side[gi];
        side.constVal.assign(side.g->size(), std::nullopt);
        bool changed = true;
        while (changed) {
            changed = false;
            for (InstId i = 0; i < side.g->size(); ++i) {
                if (side.constVal[i])
                    continue;
                if (auto v = stepConst(u, gi, i)) {
                    side.constVal[i] = v;
                    changed = true;
                }
            }
        }
        side.portConst.assign(side.g->size(), {});
        for (InstId i = 0; i < side.g->size(); ++i) {
            for (std::uint8_t p = 0; p < side.g->inst(i).arity(); ++p)
                side.portConst[i][p] = feederConst(u, gi, i, p);
        }
    }
}

void
indexChains(Universe &u)
{
    for (int gi = 0; gi < 2; ++gi) {
        GraphSide &side = u.side[gi];
        const DataflowGraph &g = *side.g;
        side.chainId.assign(g.size(), kUnset);
        side.chainPos.assign(g.size(), kUnset);
        std::vector<std::uint32_t> perThread(g.numThreads() + 1, 0);
        for (const auto &chain : g.memRegions()) {
            if (chain.empty())
                continue;
            const ThreadId t = g.inst(chain.front()).thread;
            const std::uint32_t ordinal =
                (t < perThread.size()) ? perThread[t]++ : 0;
            for (std::uint32_t pos = 0; pos < chain.size(); ++pos) {
                if (chain[pos] < g.size()) {
                    side.chainId[chain[pos]] = ordinal;
                    side.chainPos[chain[pos]] = pos;
                }
            }
        }
    }
}

// ------------------------------------------------------------- refinement

/** Signature word stream; first word is a shape tag. */
using Sig = std::vector<std::uint64_t>;

struct SigHash
{
    std::size_t
    operator()(const Sig &s) const
    {
        std::uint64_t h = 0xcbf29ce484222325ull;
        for (const std::uint64_t w : s) {
            h ^= w;
            h *= 0x100000001b3ull;
        }
        return static_cast<std::size_t>(h);
    }
};

enum : std::uint64_t
{
    kTokV = 1, kPortV, kConstV, kSteerV, kWaveV, kLoadV, kOpaqueV, kGenV,
    kTokS, kPortS, kWaveS, kSteerS, kIsectS,
    kDescV, kDescL,
};

/** Register-form base opcode of an immediate form (or the op itself). */
Opcode
baseOpcode(Opcode op, bool &immOperand)
{
    immOperand = true;
    switch (op) {
      case Opcode::kAddi: return Opcode::kAdd;
      case Opcode::kSubi: return Opcode::kSub;
      case Opcode::kMuli: return Opcode::kMul;
      case Opcode::kDivi: return Opcode::kDiv;
      case Opcode::kRemi: return Opcode::kRem;
      case Opcode::kAndi: return Opcode::kAnd;
      case Opcode::kShli: return Opcode::kShl;
      case Opcode::kShri: return Opcode::kShr;
      case Opcode::kLti:  return Opcode::kLt;
      case Opcode::kLei:  return Opcode::kLe;
      case Opcode::kEqi:  return Opcode::kEq;
      case Opcode::kNei:  return Opcode::kNe;
      default:
        immOperand = false;
        return op;
    }
}

bool
isCommutative(Opcode base)
{
    switch (base) {
      case Opcode::kAdd:
      case Opcode::kMul:
      case Opcode::kAnd:
      case Opcode::kOr:
      case Opcode::kXor:
      case Opcode::kMin:
      case Opcode::kMax:
      case Opcode::kEq:
      case Opcode::kNe:
      case Opcode::kFadd:
      case Opcode::kFmul:
      case Opcode::kFeq:
        return true;
      default:
        return false;
    }
}

/** The whole refinement state for one check. */
class Refiner
{
  public:
    explicit Refiner(const Universe &u)
        : u_(u), n_(u.ents.size()), val_(n_, 0), sup_(n_, 0),
          rv_(n_, kUnset), rs_(n_, kUnset), deadV_(n_, false),
          deadS_(n_, false)
    {}

    /**
     * Run joint refinement to fixpoint; false = iteration cap hit.
     *
     * Runs in segments. Each segment starts from the coarsest
     * partition with a FIXED alias structure, so classes only ever
     * split and the segment converges within n_+1 rounds. A segment
     * ends early when a support-gated alias's condition fails under
     * the now-finer partition: the alias is disabled for good (sticky
     * — always conservative, disabling only distinguishes more) and
     * refinement restarts. Without the restart the alias could
     * re-enable on the next Jacobi round and the iteration oscillate
     * forever; with it, the finitely many gated aliases bound the
     * segment count.
     */
    bool
    run(EquivStats &stats)
    {
        const std::size_t cap = n_ + 8;
        for (std::size_t seg = 0; seg <= 2 * n_ + 1; ++seg) {
            std::fill(val_.begin(), val_.end(), 0);
            std::fill(sup_.begin(), sup_.end(), 0);
            disabled_ = false;
            for (std::size_t iter = 0; iter < cap; ++iter) {
                resolveAll();
                if (disabled_)
                    break;  // Alias structure shrank: restart segment.
                std::vector<std::uint32_t> newSup = assign(false);
                std::vector<std::uint32_t> newVal = assign(true);
                ++stats.iterations;
                if (newSup == sup_ && newVal == val_) {
                    stats.supportClasses = countClasses(sup_);
                    stats.valueClasses = countClasses(val_);
                    return true;
                }
                sup_.swap(newSup);
                val_.swap(newVal);
            }
            if (!disabled_)
                return false;  // Cap hit without progress: fail closed.
        }
        return false;
    }

    std::uint32_t valClassOf(std::uint32_t e) const { return val_[e]; }
    std::uint32_t supClassOf(std::uint32_t e) const { return sup_[e]; }
    std::uint32_t valRepOf(std::uint32_t e) const { return rv_[e]; }

  private:
    static Counter
    countClasses(const std::vector<std::uint32_t> &cls)
    {
        std::uint32_t hi = 0;
        for (const std::uint32_t c : cls)
            hi = std::max(hi, c + 1);
        return hi;
    }

    const GraphSide &gs(const Entity &e) const { return u_.side[e.graph]; }
    const Instruction &instOf(const Entity &e) const
    {
        return gs(e).g->inst(e.inst);
    }

    // --- alias resolution (per iteration, memoized) ---------------------

    void
    resolveAll()
    {
        std::fill(rv_.begin(), rv_.end(), kUnset);
        std::fill(rs_.begin(), rs_.end(), kUnset);
        stateV_.assign(n_, 0);
        stateS_.assign(n_, 0);
        for (std::uint32_t e = 0; e < n_; ++e) {
            resolveS(e);
            resolveV(e);
        }
    }

    std::uint32_t
    resolveS(std::uint32_t e)
    {
        if (rs_[e] != kUnset)
            return rs_[e];
        if (stateS_[e] == 1)
            return e;  // Cycle guard (only reachable on malformed input).
        stateS_[e] = 1;
        std::uint32_t rep = e;
        const Entity &ent = u_.ents[e];
        if (ent.kind == Kind::kPort) {
            if (u_.feeders[e].size() == 1)
                rep = resolveS(u_.feeders[e].front());
        } else if (ent.kind == Kind::kSource) {
            const Instruction &inst = instOf(ent);
            if (inst.op != Opcode::kSteer &&
                inst.op != Opcode::kWaveAdvance) {
                const auto &ports = gs(ent).port[ent.inst];
                if (inst.arity() == 1) {
                    rep = resolveS(ports[0]);
                } else if (!deadS_[e]) {
                    // n-ary firing set is the operand intersection; it
                    // collapses onto the operands when their supports
                    // already share a class.
                    bool allEqual = true;
                    const std::uint32_t first =
                        sup_[resolveS(ports[0])];
                    for (std::uint8_t p = 1; p < inst.arity(); ++p) {
                        if (sup_[resolveS(ports[p])] != first) {
                            allEqual = false;
                            break;
                        }
                    }
                    if (allEqual) {
                        rep = resolveS(ports[0]);
                    } else {
                        deadS_[e] = true;
                        disabled_ = true;
                    }
                }
            }
        }
        stateS_[e] = 2;
        rs_[e] = rep;
        return rep;
    }

    /** Identity keep-port of a register-form binary op, if any. */
    std::optional<std::uint8_t>
    identityKeepPort(const Entity &ent) const
    {
        const GraphSide &side = gs(ent);
        const Instruction &inst = instOf(ent);
        const auto &pc = side.portConst[ent.inst];
        const auto is = [&](std::uint8_t p, Value v) {
            return pc[p] && *pc[p] == v;
        };
        switch (inst.op) {
          case Opcode::kAdd:
          case Opcode::kOr:
          case Opcode::kXor:
            if (is(1, 0)) return std::uint8_t{0};
            if (is(0, 0)) return std::uint8_t{1};
            break;
          case Opcode::kSub:
          case Opcode::kShl:
          case Opcode::kShr:
            if (is(1, 0)) return std::uint8_t{0};
            break;
          case Opcode::kMul:
            if (is(1, 1)) return std::uint8_t{0};
            if (is(0, 1)) return std::uint8_t{1};
            break;
          case Opcode::kDiv:
            if (is(1, 1)) return std::uint8_t{0};
            break;
          case Opcode::kAnd:
            if (is(1, -1)) return std::uint8_t{0};
            if (is(0, -1)) return std::uint8_t{1};
            break;
          default:
            break;
        }
        return std::nullopt;
    }

    /** Unconditional unary identity (support trivially preserved). */
    bool
    isUnaryIdentity(const Instruction &inst) const
    {
        switch (inst.op) {
          case Opcode::kAddi:
          case Opcode::kSubi:
          case Opcode::kShli:
          case Opcode::kShri:
            return inst.imm == 0;
          case Opcode::kMuli:
          case Opcode::kDivi:
            return inst.imm == 1;
          case Opcode::kAndi:
            return inst.imm == -1;
          default:
            return false;
        }
    }

    std::uint32_t
    resolveV(std::uint32_t e)
    {
        if (rv_[e] != kUnset)
            return rv_[e];
        if (stateV_[e] == 1)
            return e;
        stateV_[e] = 1;
        std::uint32_t rep = e;
        const Entity &ent = u_.ents[e];
        if (ent.kind == Kind::kPort) {
            if (u_.feeders[e].size() == 1)
                rep = resolveV(u_.feeders[e].front());
        } else if (ent.kind == Kind::kSource && ent.slot == 0) {
            const GraphSide &side = gs(ent);
            const Instruction &inst = instOf(ent);
            const auto &ports = side.port[ent.inst];
            // Constant-valued nodes keep their K signature; everything
            // below is value forwarding.
            if (!side.constVal[ent.inst]) {
                std::optional<std::uint8_t> keep;
                bool conditional = true;
                if (inst.op == Opcode::kMov || isUnaryIdentity(inst)) {
                    keep = 0;
                    conditional = false;
                } else if (inst.op == Opcode::kSelect) {
                    if (const auto pred = side.portConst[ent.inst][0])
                        keep = (*pred != 0) ? std::uint8_t{1}
                                            : std::uint8_t{2};
                } else if (inst.arity() == 2) {
                    keep = identityKeepPort(ent);
                    if (!keep &&
                        (inst.op == Opcode::kAnd ||
                         inst.op == Opcode::kOr ||
                         inst.op == Opcode::kMin ||
                         inst.op == Opcode::kMax) &&
                        u_.feeders[ports[0]].size() == 1 &&
                        u_.feeders[ports[1]].size() == 1 &&
                        u_.feeders[ports[0]].front() ==
                            u_.feeders[ports[1]].front()) {
                        // Idempotent op on the same operand twice:
                        // supports are equal by construction.
                        keep = 0;
                        conditional = false;
                    }
                }
                if (keep) {
                    bool suppOk = !conditional;
                    if (conditional && !deadV_[e]) {
                        suppOk = sup_[resolveS(e)] ==
                                 sup_[resolveS(ports[*keep])];
                        if (!suppOk) {
                            deadV_[e] = true;
                            disabled_ = true;
                        }
                    }
                    if (suppOk)
                        rep = resolveV(ports[*keep]);
                }
            }
        }
        stateV_[e] = 2;
        rv_[e] = rep;
        return rep;
    }

    // --- signatures (of representatives only) ---------------------------

    Sig
    suppSig(std::uint32_t e) const
    {
        const Entity &ent = u_.ents[e];
        if (ent.kind == Kind::kToken) {
            const TokenKey &k = u_.tokenKeys[ent.inst];
            return {kTokS, std::get<0>(k), std::get<1>(k)};
        }
        if (ent.kind == Kind::kPort) {
            Sig sig{kPortS};
            for (const std::uint32_t f : u_.feeders[e])
                sig.push_back(sup_[rs_[f]]);
            std::sort(sig.begin() + 1, sig.end());
            return sig;
        }
        const Instruction &inst = instOf(ent);
        const auto &ports = gs(ent).port[ent.inst];
        if (inst.op == Opcode::kWaveAdvance)
            return {kWaveS, sup_[rs_[ports[0]]]};
        if (inst.op == Opcode::kSteer) {
            std::uint64_t s0 = sup_[rs_[ports[0]]];
            std::uint64_t s1 = sup_[rs_[ports[1]]];
            if (s1 < s0)
                std::swap(s0, s1);
            return {kSteerS, ent.slot, s0, s1, val_[rv_[ports[1]]]};
        }
        // n-ary with differing operand supports: the intersection.
        Sig sig{kIsectS};
        for (std::uint8_t p = 0; p < inst.arity(); ++p)
            sig.push_back(sup_[rs_[ports[p]]]);
        std::sort(sig.begin() + 1, sig.end());
        sig.erase(std::unique(sig.begin() + 1, sig.end()), sig.end());
        return sig;
    }

    Sig
    valSig(std::uint32_t e) const
    {
        const Entity &ent = u_.ents[e];
        if (ent.kind == Kind::kToken) {
            // A token is a constant stream: it emits its value exactly
            // on its support (which pins thread and wave). Sharing the
            // kConstV shape lets a retargeted initial token merge with
            // the constant-valued entry mov it used to flow through.
            const TokenKey &k = u_.tokenKeys[ent.inst];
            return {kConstV,
                    static_cast<std::uint64_t>(std::get<2>(k)),
                    sup_[rs_[e]]};
        }
        if (ent.kind == Kind::kPort) {
            Sig sig{kPortV};
            for (const std::uint32_t f : u_.feeders[e])
                sig.push_back(val_[rv_[f]]);
            std::sort(sig.begin() + 1, sig.end());
            return sig;
        }
        const GraphSide &side = gs(ent);
        const Instruction &inst = instOf(ent);
        const auto &ports = side.port[ent.inst];
        if (ent.slot == 0 && side.constVal[ent.inst]) {
            return {kConstV,
                    static_cast<std::uint64_t>(*side.constVal[ent.inst]),
                    sup_[rs_[e]]};
        }
        switch (inst.op) {
          case Opcode::kSteer:
            return {kSteerV, ent.slot, val_[rv_[ports[0]]],
                    val_[rv_[ports[1]]]};
          case Opcode::kWaveAdvance:
            return {kWaveV, val_[rv_[ports[0]]]};
          case Opcode::kLoad: {
            Sig sig{kLoadV, inst.thread, side.chainId[ent.inst],
                    side.chainPos[ent.inst],
                    static_cast<std::uint64_t>(inst.imm)};
            appendDescs(sig, ent, Opcode::kLoad, false);
            return sig;
          }
          case Opcode::kStoreAddr:
          case Opcode::kStoreData:
          case Opcode::kMemNop:
          case Opcode::kSink:
          case Opcode::kNop:
            // Never consumed along a value path that matters; give each
            // its own class.
            return {kOpaqueV, ent.graph, ent.inst};
          default:
            break;
        }
        bool immOperand = false;
        const Opcode base = baseOpcode(inst.op, immOperand);
        Sig sig{kGenV, static_cast<std::uint64_t>(base)};
        appendDescs(sig, ent, base, immOperand);
        return sig;
    }

    /**
     * Append normalized operand descriptors (and, when any operand is
     * a literal, the node's own support class — a literal descriptor
     * erases the operand's firing set, so the signature must pin it).
     * Normalizations: immediate forms become base-op + literal,
     * commutative operand pairs sort, mul-by-2^k becomes shl-by-k.
     */
    void
    appendDescs(Sig &sig, const Entity &ent, Opcode base,
                bool immOperand) const
    {
        const GraphSide &side = gs(ent);
        const Instruction &inst = instOf(ent);
        const auto &ports = side.port[ent.inst];
        using Desc = std::array<std::uint64_t, 2>;
        std::vector<Desc> descs;
        for (std::uint8_t p = 0; p < inst.arity(); ++p) {
            const auto &pc = side.portConst[ent.inst][p];
            if (pc) {
                descs.push_back(
                    Desc{kDescL, static_cast<std::uint64_t>(*pc)});
            } else {
                descs.push_back(Desc{kDescV, val_[rv_[ports[p]]]});
            }
        }
        if (immOperand) {
            descs.push_back(
                Desc{kDescL, static_cast<std::uint64_t>(inst.imm)});
        }
        if (isCommutative(base) && descs.size() == 2 &&
            descs[1] < descs[0]) {
            std::swap(descs[0], descs[1]);
        }
        if (base == Opcode::kMul && descs.size() == 2) {
            // x * 2^k == x << k (mod 2^64; kMul wraps through uint64).
            const bool lit0 = descs[0][0] == kDescL;
            const bool lit1 = descs[1][0] == kDescL;
            if (lit0 != lit1) {
                const Desc &lit = lit0 ? descs[0] : descs[1];
                const Desc other = lit0 ? descs[1] : descs[0];
                const auto c = static_cast<Value>(lit[1]);
                if (c >= 2 && (c & (c - 1)) == 0) {
                    std::uint64_t k = 0;
                    for (Value v = c; v > 1; v >>= 1)
                        ++k;
                    sig[1] = static_cast<std::uint64_t>(Opcode::kShl);
                    descs = {other, Desc{kDescL, k}};
                }
            }
        }
        bool anyLit = false;
        for (const Desc &d : descs) {
            sig.push_back(d[0]);
            sig.push_back(d[1]);
            anyLit = anyLit || d[0] == kDescL;
        }
        if (anyLit)
            sig.push_back(sup_[rs_[static_cast<std::uint32_t>(
                &ent - u_.ents.data())]]);
    }

    std::vector<std::uint32_t>
    assign(bool value)
    {
        const std::vector<std::uint32_t> &res = value ? rv_ : rs_;
        std::vector<std::uint32_t> out(n_, kUnset);
        std::unordered_map<Sig, std::uint32_t, SigHash> ids;
        ids.reserve(n_);
        for (std::uint32_t e = 0; e < n_; ++e) {
            if (res[e] != e)
                continue;
            const Sig sig = value ? valSig(e) : suppSig(e);
            const auto it =
                ids.emplace(sig,
                            static_cast<std::uint32_t>(ids.size()));
            out[e] = it.first->second;
        }
        for (std::uint32_t e = 0; e < n_; ++e) {
            if (res[e] != e)
                out[e] = out[res[e]];
        }
        return out;
    }

    const Universe &u_;
    const std::size_t n_;
    std::vector<std::uint32_t> val_, sup_;
    std::vector<std::uint32_t> rv_, rs_;
    std::vector<std::uint8_t> stateV_, stateS_;
    // Sticky kill switches for support-gated aliases (see run()).
    std::vector<bool> deadV_, deadS_;
    bool disabled_ = false;
};

// ------------------------------------------------------------- the checks

/** Human name of an entity for witness messages. */
std::string
describeEntity(const Universe &u, std::uint32_t e)
{
    const Entity &ent = u.ents[e];
    switch (ent.kind) {
      case Kind::kToken: {
        const TokenKey &k = u.tokenKeys[ent.inst];
        return msgf("token t%u w%u v%lld",
                    static_cast<unsigned>(std::get<0>(k)),
                    static_cast<unsigned>(std::get<1>(k)),
                    static_cast<long long>(std::get<2>(k)));
      }
      case Kind::kPort:
        return msgf("inst %u port %u (multi-producer)", ent.inst,
                    static_cast<unsigned>(ent.slot));
      case Kind::kSource: {
        const Instruction &inst = u.side[ent.graph].g->inst(ent.inst);
        std::string name(opcodeName(inst.op));
        if (inst.op == Opcode::kConst || inst.imm != 0) {
            return msgf("inst %u (%s imm=%lld)", ent.inst, name.c_str(),
                        static_cast<long long>(inst.imm));
        }
        return msgf("inst %u (%s)", ent.inst, name.c_str());
      }
    }
    return "?";
}

/**
 * Lockstep backward walk from a diverging sink pair to the first
 * diverging node pair: the minimal witness of WS801.
 */
std::string
witness(const Universe &u, const Refiner &r, std::uint32_t portA,
        std::uint32_t portB)
{
    std::uint32_t ea = r.valRepOf(portA);
    std::uint32_t eb = r.valRepOf(portB);
    for (int depth = 0; depth < 64; ++depth) {
        const Entity &a = u.ents[ea];
        const Entity &b = u.ents[eb];
        if (a.kind != Kind::kSource || b.kind != Kind::kSource)
            break;
        const Instruction &ia = u.side[a.graph].g->inst(a.inst);
        const Instruction &ib = u.side[b.graph].g->inst(b.inst);
        if (ia.op != ib.op || ia.imm != ib.imm ||
            ia.arity() != ib.arity()) {
            break;
        }
        // Same local shape: descend into the first diverging operand.
        std::uint32_t nextA = kUnset;
        std::uint32_t nextB = kUnset;
        for (std::uint8_t p = 0; p < ia.arity(); ++p) {
            const std::uint32_t pa = u.side[a.graph].port[a.inst][p];
            const std::uint32_t pb = u.side[b.graph].port[b.inst][p];
            if (r.valClassOf(pa) != r.valClassOf(pb)) {
                nextA = r.valRepOf(pa);
                nextB = r.valRepOf(pb);
                break;
            }
        }
        if (nextA == kUnset)
            break;  // Divergence is in the firing sets, not a value.
        ea = nextA;
        eb = nextB;
    }
    return "first divergence: a " + describeEntity(u, ea) + " vs b " +
           describeEntity(u, eb);
}

void
checkCompletion(const Universe &u, VerifyReport &rep)
{
    const DataflowGraph &a = *u.side[0].g;
    const DataflowGraph &b = *u.side[1].g;
    if (a.numThreads() != b.numThreads()) {
        rep.add(DiagCode::kCompletionMismatch, kInvalidInst,
                msgf("thread count changed: %u vs %u",
                     static_cast<unsigned>(a.numThreads()),
                     static_cast<unsigned>(b.numThreads())));
    }
    if (a.expectedSinkTokens() != b.expectedSinkTokens()) {
        rep.add(DiagCode::kCompletionMismatch, kInvalidInst,
                msgf("expected sink tokens changed: %llu vs %llu",
                     static_cast<unsigned long long>(
                         a.expectedSinkTokens()),
                     static_cast<unsigned long long>(
                         b.expectedSinkTokens())));
    }
}

std::vector<std::vector<InstId>>
sinksByThread(const DataflowGraph &g)
{
    std::vector<std::vector<InstId>> sinks(
        std::max<std::size_t>(1, g.numThreads()));
    for (InstId i = 0; i < g.size(); ++i) {
        const Instruction &inst = g.inst(i);
        if (inst.op == Opcode::kSink && inst.thread < sinks.size())
            sinks[inst.thread].push_back(i);
    }
    return sinks;
}

void
checkSinks(const Universe &u, const Refiner &r, VerifyReport &rep,
           EquivStats &stats)
{
    const auto sinksA = sinksByThread(*u.side[0].g);
    const auto sinksB = sinksByThread(*u.side[1].g);
    const std::size_t threads = std::max(sinksA.size(), sinksB.size());
    for (std::size_t t = 0; t < threads; ++t) {
        const auto &sa = (t < sinksA.size()) ? sinksA[t]
                                             : std::vector<InstId>{};
        const auto &sb = (t < sinksB.size()) ? sinksB[t]
                                             : std::vector<InstId>{};
        if (sa.size() != sb.size()) {
            rep.add(DiagCode::kCompletionMismatch, kInvalidInst,
                    msgf("thread %u sink count changed: %zu vs %zu "
                         "(liveness roots dropped or added)",
                         static_cast<unsigned>(t), sa.size(), sb.size()));
            continue;
        }
        for (std::size_t k = 0; k < sa.size(); ++k) {
            ++stats.sinkPairs;
            const std::uint32_t pa = u.side[0].port[sa[k]][0];
            const std::uint32_t pb = u.side[1].port[sb[k]][0];
            const bool valOk =
                r.valClassOf(pa) == r.valClassOf(pb);
            const bool supOk =
                r.supClassOf(pa) == r.supClassOf(pb);
            if (valOk && supOk)
                continue;
            rep.add(DiagCode::kSinkMismatch, sa[k],
                    msgf("sink pair %zu of thread %u (a inst %u vs b "
                         "inst %u): %s; %s",
                         k, static_cast<unsigned>(t), sa[k], sb[k],
                         valOk ? "value streams match but firing sets "
                                 "diverge"
                               : "value streams diverge",
                         witness(u, r, pa, pb).c_str()));
        }
    }
}

void
checkMemory(const Universe &u, const Refiner &r, VerifyReport &rep,
            EquivStats &stats)
{
    const DataflowGraph &a = *u.side[0].g;
    const DataflowGraph &b = *u.side[1].g;

    auto initImage = [](const DataflowGraph &g) {
        auto init = g.memInit();
        std::sort(init.begin(), init.end());
        return init;
    };
    if (initImage(a) != initImage(b)) {
        rep.add(DiagCode::kMemEffectMismatch, kInvalidInst,
                "initial memory image differs");
    }

    auto chainsByThread = [](const DataflowGraph &g) {
        std::vector<std::vector<std::vector<InstId>>> chains(
            std::max<std::size_t>(1, g.numThreads()));
        for (const auto &chain : g.memRegions()) {
            if (chain.empty())
                continue;
            const ThreadId t = g.inst(chain.front()).thread;
            if (t < chains.size())
                chains[t].push_back(chain);
        }
        return chains;
    };
    const auto chainsA = chainsByThread(a);
    const auto chainsB = chainsByThread(b);
    const std::size_t threads = std::max(chainsA.size(), chainsB.size());
    for (std::size_t t = 0; t < threads; ++t) {
        const auto &ca = (t < chainsA.size())
                             ? chainsA[t]
                             : std::vector<std::vector<InstId>>{};
        const auto &cb = (t < chainsB.size())
                             ? chainsB[t]
                             : std::vector<std::vector<InstId>>{};
        if (ca.size() != cb.size()) {
            rep.add(DiagCode::kMemEffectMismatch, kInvalidInst,
                    msgf("thread %u wave-ordering chain count changed: "
                         "%zu vs %zu",
                         static_cast<unsigned>(t), ca.size(), cb.size()));
            continue;
        }
        for (std::size_t c = 0; c < ca.size(); ++c) {
            ++stats.chainPairs;
            if (ca[c].size() != cb[c].size()) {
                rep.add(DiagCode::kMemEffectMismatch, kInvalidInst,
                        msgf("thread %u chain %zu length changed: %zu "
                             "vs %zu (effects dropped or added)",
                             static_cast<unsigned>(t), c, ca[c].size(),
                             cb[c].size()));
                continue;
            }
            for (std::size_t k = 0; k < ca[c].size(); ++k) {
                const InstId ia = ca[c][k];
                const InstId ib = cb[c][k];
                const Instruction &xa = a.inst(ia);
                const Instruction &xb = b.inst(ib);
                if (xa.op != xb.op || xa.imm != xb.imm) {
                    rep.add(DiagCode::kMemEffectMismatch, ia,
                            msgf("thread %u chain %zu effect %zu "
                                 "changed: a %s imm=%lld vs b %s "
                                 "imm=%lld (reordered or replaced)",
                                 static_cast<unsigned>(t), c, k,
                                 std::string(opcodeName(xa.op)).c_str(),
                                 static_cast<long long>(xa.imm),
                                 std::string(opcodeName(xb.op)).c_str(),
                                 static_cast<long long>(xb.imm)));
                    continue;
                }
                if (xa.mem.prev != xb.mem.prev ||
                    xa.mem.seq != xb.mem.seq ||
                    xa.mem.next != xb.mem.next) {
                    rep.add(DiagCode::kMemEffectMismatch, ia,
                            msgf("thread %u chain %zu effect %zu: "
                                 "sequence links changed (%d:%d:%d vs "
                                 "%d:%d:%d)",
                                 static_cast<unsigned>(t), c, k,
                                 xa.mem.prev, xa.mem.seq, xa.mem.next,
                                 xb.mem.prev, xb.mem.seq, xb.mem.next));
                }
                const std::uint32_t pa = u.side[0].port[ia][0];
                const std::uint32_t pb = u.side[1].port[ib][0];
                if (r.valClassOf(pa) != r.valClassOf(pb)) {
                    rep.add(DiagCode::kMemEffectMismatch, ia,
                            msgf("thread %u chain %zu effect %zu (%s): "
                                 "address stream diverges; %s",
                                 static_cast<unsigned>(t), c, k,
                                 std::string(opcodeName(xa.op)).c_str(),
                                 witness(u, r, pa, pb).c_str()));
                }
                const std::uint32_t sa = u.side[0].src0[ia];
                const std::uint32_t sb = u.side[1].src0[ib];
                if (r.supClassOf(sa) != r.supClassOf(sb)) {
                    rep.add(DiagCode::kMemEffectMismatch, ia,
                            msgf("thread %u chain %zu effect %zu (%s): "
                                 "firing set diverges",
                                 static_cast<unsigned>(t), c, k,
                                 std::string(
                                     opcodeName(xa.op)).c_str()));
                }
            }
        }
    }

    // Store data halves (not chain members): pair per thread in
    // instruction order and compare the value streams.
    auto dataHalves = [](const DataflowGraph &g) {
        std::vector<std::vector<InstId>> sd(
            std::max<std::size_t>(1, g.numThreads()));
        for (InstId i = 0; i < g.size(); ++i) {
            if (g.inst(i).op == Opcode::kStoreData &&
                g.inst(i).thread < sd.size()) {
                sd[g.inst(i).thread].push_back(i);
            }
        }
        return sd;
    };
    const auto sdA = dataHalves(a);
    const auto sdB = dataHalves(b);
    const std::size_t sdThreads = std::max(sdA.size(), sdB.size());
    for (std::size_t t = 0; t < sdThreads; ++t) {
        const auto &da = (t < sdA.size()) ? sdA[t] : std::vector<InstId>{};
        const auto &db = (t < sdB.size()) ? sdB[t] : std::vector<InstId>{};
        if (da.size() != db.size()) {
            rep.add(DiagCode::kMemEffectMismatch, kInvalidInst,
                    msgf("thread %u store_data count changed: %zu vs %zu",
                         static_cast<unsigned>(t), da.size(), db.size()));
            continue;
        }
        for (std::size_t k = 0; k < da.size(); ++k) {
            const InstId ia = da[k];
            const InstId ib = db[k];
            if (a.inst(ia).mem.seq != b.inst(ib).mem.seq) {
                rep.add(DiagCode::kMemEffectMismatch, ia,
                        msgf("thread %u store_data %zu: sequence "
                             "changed (%d vs %d)",
                             static_cast<unsigned>(t), k,
                             a.inst(ia).mem.seq, b.inst(ib).mem.seq));
                continue;
            }
            const std::uint32_t pa = u.side[0].port[ia][0];
            const std::uint32_t pb = u.side[1].port[ib][0];
            if (r.valClassOf(pa) != r.valClassOf(pb) ||
                r.supClassOf(pa) != r.supClassOf(pb)) {
                rep.add(DiagCode::kMemEffectMismatch, ia,
                        msgf("thread %u store seq %d: stored value "
                             "stream diverges; %s",
                             static_cast<unsigned>(t), a.inst(ia).mem.seq,
                             witness(u, r, pa, pb).c_str()));
            }
        }
    }
}

} // namespace

EquivResult
checkEquivalence(const DataflowGraph &a, const DataflowGraph &b)
{
    EquivResult result;
    result.report = VerifyReport(a.name() + " vs " + b.name());

    Universe u = buildUniverse(a, b);
    propagateConstants(u);
    indexChains(u);
    result.stats.entities = u.ents.size();

    Refiner refiner(u);
    if (!refiner.run(result.stats)) {
        // Unreachable in practice (refinement only splits classes);
        // fail closed rather than certify an unproven translation.
        result.report.add(DiagCode::kCompletionMismatch, kInvalidInst,
                          "partition refinement did not converge");
        return result;
    }

    checkCompletion(u, result.report);
    checkMemory(u, refiner, result.report, result.stats);
    checkSinks(u, refiner, result.report, result.stats);
    return result;
}

} // namespace ws
