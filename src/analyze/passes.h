/**
 * @file
 * Internal pass entry points of the static analyzer. Like the verifier
 * passes, each one appends to a shared result and assumes nothing about
 * the others having run; unlike them, the analyzer requires a graph
 * that already passed structural verification (analyzeGraph() is only
 * called on verified graphs, so instruction ids and ports are trusted).
 */

#ifndef WS_ANALYZE_PASSES_H_
#define WS_ANALYZE_PASSES_H_

#include <array>
#include <vector>

#include "analyze/profile.h"
#include "isa/graph.h"
#include "verify/diagnostic.h"

namespace ws {
namespace analyze_detail {

/**
 * Shared levelization scratch: the DAG view of the graph (back edges of
 * loops dropped), per-instruction ASAP/ALAP levels and latency-weighted
 * depths, and the loop-shape facts the bound needs.
 */
struct Levelization
{
    std::vector<std::uint32_t> asap;   ///< ASAP level per instruction.
    std::vector<std::uint32_t> alap;   ///< ALAP level per instruction.
    std::vector<Counter> depth;        ///< Latency-weighted finish time.
    std::uint32_t maxLevel = 0;
    Counter backEdges = 0;

    std::vector<bool> inCycle;         ///< Instruction sits on a cycle.
    std::vector<bool> perWave;         ///< In or downstream of a cycle:
                                       ///  re-executes every wave.
    /** Shortest latency of a cycle through a wave-advance, per thread
     *  (0 = thread acyclic): the wave initiation interval floor. */
    std::vector<Counter> minCycleLatency;
};

/** Build the levelization (pass_critpath.cc). */
Levelization levelize(const DataflowGraph &g);

/** Critical-path / loop-shape numbers into the profile. */
void runCritPath(const DataflowGraph &g, const Levelization &lv,
                 StaticProfile &profile);

/** Width/ILP histograms (pass_width.cc). */
void runWidth(const DataflowGraph &g, const Levelization &lv,
              StaticProfile &profile);

/** Wave-ordered chain depths (pass_memchain.cc). */
void runMemChain(const DataflowGraph &g, StaticProfile &profile);

/** Edge-span census under a placement (pass_locality.cc). */
void runLocality(const DataflowGraph &g, const Placement &placement,
                 StaticProfile &profile);

// Optimization-opportunity detection. Each detector returns candidate
// instruction ids; the advice wrappers report them as WS5xx notes and
// the rewriter consumes the same lists, so advice and rewrite can never
// disagree about what is optimizable.

/** Static producers of each input port (pass_fold.cc). */
struct PortProducers
{
    std::array<std::vector<InstId>, 3> port;
};
std::vector<PortProducers> producerIndex(const DataflowGraph &g);

/** tokenPorts(g)[i][p]: an initial token targets (inst i, port p). */
std::vector<std::array<bool, 3>> tokenPorts(const DataflowGraph &g);

/** Pure compute ops whose every input is a single kConst (pass_fold.cc). */
std::vector<InstId> foldCandidates(const DataflowGraph &g);

/** Liveness mask: true = value can reach a sink or memory effect
 *  (pass_dce.cc). Memory ops and sinks are always live roots. */
std::vector<bool> liveMask(const DataflowGraph &g);

/** Single-consumer movs whose producer could feed the consumer
 *  directly (pass_copychain.cc). */
std::vector<InstId> copyCandidates(const DataflowGraph &g);

/** Advice wrappers: report each candidate as a WS5xx note. */
void adviseFold(const DataflowGraph &g, VerifyReport &rep);
void adviseDce(const DataflowGraph &g, VerifyReport &rep);
void adviseCopyChain(const DataflowGraph &g, VerifyReport &rep);

} // namespace analyze_detail
} // namespace ws

#endif // WS_ANALYZE_PASSES_H_
