/**
 * @file
 * Internal pass entry points of the static analyzer. Like the verifier
 * passes, each one appends to a shared result and assumes nothing about
 * the others having run; unlike them, the analyzer requires a graph
 * that already passed structural verification (analyzeGraph() is only
 * called on verified graphs, so instruction ids and ports are trusted).
 */

#ifndef WS_ANALYZE_PASSES_H_
#define WS_ANALYZE_PASSES_H_

#include <array>
#include <functional>
#include <vector>

#include "analyze/profile.h"
#include "isa/graph.h"
#include "verify/diagnostic.h"

namespace ws {
namespace analyze_detail {

/**
 * Shared levelization scratch: the DAG view of the graph (back edges of
 * loops dropped), per-instruction ASAP/ALAP levels and latency-weighted
 * depths, and the loop-shape facts the bound needs.
 */
struct Levelization
{
    std::vector<std::uint32_t> asap;   ///< ASAP level per instruction.
    std::vector<std::uint32_t> alap;   ///< ALAP level per instruction.
    std::vector<Counter> depth;        ///< Latency-weighted finish time.
    std::uint32_t maxLevel = 0;
    Counter backEdges = 0;

    std::vector<bool> inCycle;         ///< Instruction sits on a cycle.
    std::vector<bool> perWave;         ///< In or downstream of a cycle:
                                       ///  re-executes every wave.
    /** Shortest latency of a cycle through a wave-advance, per thread
     *  (0 = thread acyclic): the wave initiation interval floor. */
    std::vector<Counter> minCycleLatency;

    /** Unit-weight max cycle ratio per thread (pass_bound.cc): the
     *  most dependence hops per wave advance over any loop, 0 when
     *  acyclic. See threadCycleRatios(). Empty when levelize() was
     *  asked to skip it. */
    std::vector<double> cycleRatio;
};

/** Build the levelization (pass_critpath.cc). @p cycleRatios gates the
 *  parametric cycle-ratio search (48 Bellman-Ford passes per SCC) —
 *  pass false on paths that recompute ratios under their own weight
 *  model or never read them. */
Levelization levelize(const DataflowGraph &g, bool cycleRatios = true);

/** Critical-path / loop-shape numbers into the profile. */
void runCritPath(const DataflowGraph &g, const Levelization &lv,
                 StaticProfile &profile);

/** Width/ILP histograms (pass_width.cc). */
void runWidth(const DataflowGraph &g, const Levelization &lv,
              StaticProfile &profile);

/** Wave-ordered chain depths (pass_memchain.cc). */
void runMemChain(const DataflowGraph &g, StaticProfile &profile);

/** Edge-span census under a placement (pass_locality.cc). */
void runLocality(const DataflowGraph &g, const Placement &placement,
                 StaticProfile &profile);

/** Producer-to-consumer dispatch-time weight of one dependence edge. */
using EdgeWeightFn = std::function<double(InstId, InstId)>;

/**
 * Max cycle ratio per thread (pass_bound.cc): over every dependence
 * cycle C, the maximum of weight(C) / waveAdvances(C) — the tightest
 * sound initiation-interval floor the weight model supports. Computed
 * per SCC with a Lawler-style parametric search (binary search on
 * lambda, Bellman-Ford positive-cycle test on w(e) - lambda per wave
 * advance); the search returns the infeasible-side endpoint, so the
 * result never exceeds the true ratio (under-estimating lambda keeps
 * the throughput bound sound). Iterative non-pipelined ops add a
 * serialization floor of (latency-1)/waveAdvances. A thread owning
 * several loops reports the SMALLEST of their ratios (sequential loops
 * each only gate their own waves). 0 = thread acyclic.
 */
std::vector<double> threadCycleRatios(const DataflowGraph &g,
                                      const EdgeWeightFn &weight);

// Optimization-opportunity detection. Each detector returns candidate
// instruction ids; the advice wrappers report them as WS5xx notes and
// the rewriter consumes the same lists, so advice and rewrite can never
// disagree about what is optimizable.

/** Static producers of each input port (pass_fold.cc). */
struct PortProducers
{
    std::array<std::vector<InstId>, 3> port;
};
std::vector<PortProducers> producerIndex(const DataflowGraph &g);

/** tokenPorts(g)[i][p]: an initial token targets (inst i, port p). */
std::vector<std::array<bool, 3>> tokenPorts(const DataflowGraph &g);

/** Pure compute ops whose every input is a single kConst (pass_fold.cc). */
std::vector<InstId> foldCandidates(const DataflowGraph &g);

/** Liveness mask: true = value can reach a sink or memory effect
 *  (pass_dce.cc). Memory ops and sinks are always live roots. */
std::vector<bool> liveMask(const DataflowGraph &g);

/** Single-consumer movs whose producer could feed the consumer
 *  directly (pass_copychain.cc). */
std::vector<InstId> copyCandidates(const DataflowGraph &g);

/** One static feed of an input port: producer instruction and side. */
struct PortFeed
{
    InstId inst;
    std::uint8_t side;
};

/** Side-aware producer edges per (inst, port) (pass_cse.cc). */
std::vector<std::array<std::vector<PortFeed>, 3>>
feedIndex(const DataflowGraph &g);

/**
 * One WS504 redundancy (pass_cse.cc). keep != drop: @p drop recomputes
 * @p keep's value stream, so keep can absorb drop's consumers.
 * keep == drop: @p drop is an entry mov whose initial tokens can be
 * retargeted to its consumers directly.
 */
struct CseCandidate
{
    InstId keep;
    InstId drop;

    bool entryMov() const { return keep == drop; }
};
std::vector<CseCandidate> cseCandidates(const DataflowGraph &g);

/**
 * One WS505 rewrite (pass_algebra.cc): @p inst becomes @p newOp with
 * immediate @p newImm, keeping input port @p keepPort as its (only)
 * operand; a binary instruction's other port feed is erased. Only
 * rewrites whose firing set provably survives are reported.
 */
struct AlgebraicRewrite
{
    InstId inst;
    Opcode newOp;
    Value newImm;
    std::uint8_t keepPort;
};
std::vector<AlgebraicRewrite> algebraCandidates(const DataflowGraph &g);

/** Advice wrappers: report each candidate as a WS5xx note. */
void adviseFold(const DataflowGraph &g, VerifyReport &rep);
void adviseDce(const DataflowGraph &g, VerifyReport &rep);
void adviseCopyChain(const DataflowGraph &g, VerifyReport &rep);
void adviseCse(const DataflowGraph &g, VerifyReport &rep);
void adviseAlgebra(const DataflowGraph &g, VerifyReport &rep);

} // namespace analyze_detail
} // namespace ws

#endif // WS_ANALYZE_PASSES_H_
