#include "analyze/rewriter.h"

#include <algorithm>

#include "analyze/passes.h"
#include "common/log.h"
#include "isa/exec.h"

namespace ws {

using analyze_detail::copyCandidates;
using analyze_detail::foldCandidates;
using analyze_detail::liveMask;
using analyze_detail::producerIndex;

namespace {

/** Erase every output edge of @p producer that targets @p ref. */
void
eraseEdge(Instruction &producer, const PortRef &ref)
{
    for (auto &side : producer.outs) {
        side.erase(std::remove(side.begin(), side.end(), ref),
                   side.end());
    }
}

/**
 * Fold this round's candidates: each becomes a kConst holding its
 * computed value, keeping exactly one trigger edge (the port-0 const,
 * whose tag matches the operands the instruction would have matched).
 */
Counter
foldRound(DataflowGraph &g)
{
    const std::vector<InstId> candidates = foldCandidates(g);
    const auto producers = producerIndex(g);
    for (const InstId id : candidates) {
        Instruction &inst = g.inst(id);
        Operands in{};
        for (std::uint8_t p = 0; p < inst.arity(); ++p)
            in[p] = g.inst(producers[id].port[p].front()).imm;
        const Value folded = evaluate(inst.op, inst.imm, in);

        // Drop the port>=1 feeds; the port-0 const stays as trigger.
        for (std::uint8_t p = 1; p < inst.arity(); ++p) {
            eraseEdge(g.inst(producers[id].port[p].front()),
                      PortRef{id, p});
        }
        inst.op = Opcode::kConst;
        inst.imm = folded;
    }
    return candidates.size();
}

/** Bypass single-consumer movs: producers feed the consumer directly. */
Counter
bypassRound(DataflowGraph &g)
{
    Counter bypassed = 0;
    for (const InstId id : copyCandidates(g)) {
        // Recompute producers each step: bypassing one mov of a chain
        // rewires the feeds of the next.
        const auto producers = producerIndex(g);
        if (g.inst(id).outs[0].size() != 1 ||
            producers[id].port[0].empty()) {
            continue;  // A previous bypass invalidated this candidate.
        }
        const PortRef dst = g.inst(id).outs[0].front();
        for (const InstId p : producers[id].port[0]) {
            for (auto &side : g.inst(p).outs) {
                for (PortRef &out : side) {
                    if (out == PortRef{id, 0})
                        out = dst;
                }
            }
        }
        g.inst(id).outs[0].clear();  // Now unfed and feeding nothing.
        ++bypassed;
    }
    return bypassed;
}

/** Disconnect this round's dead instructions (removal at compaction). */
Counter
dceRound(DataflowGraph &g, std::vector<bool> &removedMask)
{
    const std::vector<bool> live = liveMask(g);
    Counter removed = 0;
    for (InstId i = 0; i < g.size(); ++i) {
        if (live[i] || removedMask[i])
            continue;
        removedMask[i] = true;
        ++removed;
        g.inst(i).outs[0].clear();
        g.inst(i).outs[1].clear();
    }
    if (removed == 0)
        return 0;
    // Unhook live producers from the corpses.
    for (InstId i = 0; i < g.size(); ++i) {
        for (auto &side : g.inst(i).outs) {
            side.erase(std::remove_if(side.begin(), side.end(),
                                      [&](const PortRef &out) {
                                          return removedMask[out.inst];
                                      }),
                       side.end());
        }
    }
    return removed;
}

/** Rebuild the graph without the removed instructions. */
DataflowGraph
compact(const DataflowGraph &g, const std::vector<bool> &removedMask)
{
    std::vector<InstId> remap(g.size(), kInvalidInst);
    DataflowGraph out(g.name(), g.numThreads());
    for (InstId i = 0; i < g.size(); ++i) {
        if (removedMask[i])
            continue;
        Instruction inst = g.inst(i);
        remap[i] = out.addInstruction(std::move(inst));
    }
    for (InstId i = 0; i < out.size(); ++i) {
        for (auto &side : out.inst(i).outs) {
            for (PortRef &ref : side)
                ref.inst = remap[ref.inst];
        }
    }
    for (Token t : g.initialTokens()) {
        if (t.dst.inst < g.size() && !removedMask[t.dst.inst]) {
            t.dst.inst = remap[t.dst.inst];
            out.addInitialToken(t);
        }
    }
    for (const auto &[addr, value] : g.memInit())
        out.addMemInit(addr, value);
    for (std::vector<InstId> chain : g.memRegions()) {
        for (InstId &member : chain)
            member = remap[member];
        out.addMemRegion(std::move(chain));
    }
    out.setExpectedSinkTokens(g.expectedSinkTokens());
    return out;
}

} // namespace

VerifyReport
adviseGraph(const DataflowGraph &g)
{
    VerifyReport rep(g.name());
    analyze_detail::adviseFold(g, rep);
    analyze_detail::adviseDce(g, rep);
    analyze_detail::adviseCopyChain(g, rep);
    return rep;
}

RewriteStats
optimizeGraph(DataflowGraph &g)
{
    RewriteStats stats;
    std::vector<bool> removedMask(g.size(), false);
    constexpr Counter kMaxRounds = 100;  // Fixpoint safety valve.
    while (stats.rounds < kMaxRounds) {
        ++stats.rounds;
        const Counter folded = foldRound(g);
        const Counter bypassed = bypassRound(g);
        const Counter removed = dceRound(g, removedMask);
        stats.folded += folded;
        stats.bypassed += bypassed;
        stats.removed += removed;
        if (folded + bypassed + removed == 0)
            break;
    }
    if (stats.changed())
        g = compact(g, removedMask);
    return stats;
}

} // namespace ws
