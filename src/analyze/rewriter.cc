#include "analyze/rewriter.h"

#include <algorithm>
#include <cstdlib>

#include "analyze/equiv.h"
#include "analyze/passes.h"
#include "common/log.h"
#include "isa/exec.h"

namespace ws {

using analyze_detail::AlgebraicRewrite;
using analyze_detail::CseCandidate;
using analyze_detail::algebraCandidates;
using analyze_detail::copyCandidates;
using analyze_detail::cseCandidates;
using analyze_detail::foldCandidates;
using analyze_detail::liveMask;
using analyze_detail::producerIndex;

namespace {

/** Erase every output edge of @p producer that targets @p ref. */
void
eraseEdge(Instruction &producer, const PortRef &ref)
{
    for (auto &side : producer.outs) {
        side.erase(std::remove(side.begin(), side.end(), ref),
                   side.end());
    }
}

/**
 * Fold this round's candidates: each becomes a kConst holding its
 * computed value, keeping exactly one trigger edge (the port-0 const,
 * whose tag matches the operands the instruction would have matched).
 */
Counter
foldRound(DataflowGraph &g)
{
    const std::vector<InstId> candidates = foldCandidates(g);
    const auto producers = producerIndex(g);
    for (const InstId id : candidates) {
        Instruction &inst = g.inst(id);
        Operands in{};
        for (std::uint8_t p = 0; p < inst.arity(); ++p)
            in[p] = g.inst(producers[id].port[p].front()).imm;
        const Value folded = evaluate(inst.op, inst.imm, in);

        // Drop the port>=1 feeds; the port-0 const stays as trigger.
        for (std::uint8_t p = 1; p < inst.arity(); ++p) {
            eraseEdge(g.inst(producers[id].port[p].front()),
                      PortRef{id, p});
        }
        inst.op = Opcode::kConst;
        inst.imm = folded;
    }
    return candidates.size();
}

/**
 * Apply this round's WS505 rewrites: the instruction keeps exactly one
 * operand feed (moved to port 0 if needed) and becomes newOp/newImm.
 */
Counter
algebraRound(DataflowGraph &g)
{
    const std::vector<AlgebraicRewrite> candidates = algebraCandidates(g);
    const auto feeds = analyze_detail::feedIndex(g);
    for (const AlgebraicRewrite &r : candidates) {
        Instruction &inst = g.inst(r.inst);
        if (inst.arity() == 2) {
            const std::uint8_t drop =
                static_cast<std::uint8_t>(1 - r.keepPort);
            for (const analyze_detail::PortFeed &f : feeds[r.inst][drop])
                eraseEdge(g.inst(f.inst), PortRef{r.inst, drop});
            if (r.keepPort == 1) {
                for (const analyze_detail::PortFeed &f :
                     feeds[r.inst][1]) {
                    for (auto &side : g.inst(f.inst).outs) {
                        for (PortRef &out : side) {
                            if (out == PortRef{r.inst, 1})
                                out.port = 0;
                        }
                    }
                }
            }
        }
        inst.op = r.newOp;
        inst.imm = r.newImm;
    }
    return candidates.size();
}

/**
 * Apply this round's WS504 candidates: retarget entry-mov tokens to
 * the consumers, and graft merged instructions' consumers onto their
 * keeper (the dropped instruction dies at the next DCE round).
 */
Counter
cseRound(DataflowGraph &g)
{
    const std::vector<CseCandidate> candidates = cseCandidates(g);
    Counter applied = 0;
    for (const CseCandidate &c : candidates) {
        if (c.entryMov()) {
            Instruction &mov = g.inst(c.drop);
            std::vector<Token> retargeted;
            for (const Token &t : g.initialTokens()) {
                if (t.dst == PortRef{c.drop, 0}) {
                    for (const PortRef &out : mov.outs[0])
                        retargeted.push_back(Token{t.tag, out, t.value});
                } else {
                    retargeted.push_back(t);
                }
            }
            g.initialTokens() = std::move(retargeted);
            mov.outs[0].clear();  // Unfed and feeding nothing: dead.
        } else {
            Instruction &keep = g.inst(c.keep);
            Instruction &drop = g.inst(c.drop);
            // Appending verbatim preserves the delivered multiset: a
            // port fed by both still receives two tokens per tag.
            keep.outs[0].insert(keep.outs[0].end(), drop.outs[0].begin(),
                                drop.outs[0].end());
            drop.outs[0].clear();
        }
        ++applied;
    }
    return applied;
}

/** Bypass single-consumer movs: producers feed the consumer directly. */
Counter
bypassRound(DataflowGraph &g)
{
    Counter bypassed = 0;
    for (const InstId id : copyCandidates(g)) {
        // Recompute producers each step: bypassing one mov of a chain
        // rewires the feeds of the next.
        const auto producers = producerIndex(g);
        if (g.inst(id).outs[0].size() != 1 ||
            producers[id].port[0].empty()) {
            continue;  // A previous bypass invalidated this candidate.
        }
        const PortRef dst = g.inst(id).outs[0].front();
        for (const InstId p : producers[id].port[0]) {
            for (auto &side : g.inst(p).outs) {
                for (PortRef &out : side) {
                    if (out == PortRef{id, 0})
                        out = dst;
                }
            }
        }
        g.inst(id).outs[0].clear();  // Now unfed and feeding nothing.
        ++bypassed;
    }
    return bypassed;
}

/** Disconnect this round's dead instructions (removal at compaction). */
Counter
dceRound(DataflowGraph &g, std::vector<bool> &removedMask)
{
    const std::vector<bool> live = liveMask(g);
    Counter removed = 0;
    for (InstId i = 0; i < g.size(); ++i) {
        if (live[i] || removedMask[i])
            continue;
        removedMask[i] = true;
        ++removed;
        g.inst(i).outs[0].clear();
        g.inst(i).outs[1].clear();
    }
    if (removed == 0)
        return 0;
    // Unhook live producers from the corpses.
    for (InstId i = 0; i < g.size(); ++i) {
        for (auto &side : g.inst(i).outs) {
            side.erase(std::remove_if(side.begin(), side.end(),
                                      [&](const PortRef &out) {
                                          return removedMask[out.inst];
                                      }),
                       side.end());
        }
    }
    return removed;
}

/** Rebuild the graph without the removed instructions. */
DataflowGraph
compact(const DataflowGraph &g, const std::vector<bool> &removedMask)
{
    std::vector<InstId> remap(g.size(), kInvalidInst);
    DataflowGraph out(g.name(), g.numThreads());
    for (InstId i = 0; i < g.size(); ++i) {
        if (removedMask[i])
            continue;
        Instruction inst = g.inst(i);
        remap[i] = out.addInstruction(std::move(inst));
    }
    for (InstId i = 0; i < out.size(); ++i) {
        for (auto &side : out.inst(i).outs) {
            for (PortRef &ref : side)
                ref.inst = remap[ref.inst];
        }
    }
    for (Token t : g.initialTokens()) {
        if (t.dst.inst < g.size() && !removedMask[t.dst.inst]) {
            t.dst.inst = remap[t.dst.inst];
            out.addInitialToken(t);
        }
    }
    for (const auto &[addr, value] : g.memInit())
        out.addMemInit(addr, value);
    for (std::vector<InstId> chain : g.memRegions()) {
        for (InstId &member : chain)
            member = remap[member];
        out.addMemRegion(std::move(chain));
    }
    out.setExpectedSinkTokens(g.expectedSinkTokens());
    return out;
}

/**
 * Test hook: with WS_REWRITE_SABOTAGE set in the environment, corrupt
 * the last live constant's value. Last, not first: folded results are
 * appended late in instruction order and feed real consumers, whereas
 * early constants are often mere triggers whose value nothing reads
 * (corrupting those is genuinely semantics-preserving). The
 * equivalence gate must catch the corruption and roll the round back;
 * tests and CI assert it does.
 */
bool
sabotageForTest(DataflowGraph &g)
{
    const char *mode = std::getenv("WS_REWRITE_SABOTAGE");
    if (mode == nullptr || *mode == '\0')
        return false;
    for (InstId i = g.size(); i > 0; --i) {
        Instruction &inst = g.inst(i - 1);
        if (inst.op == Opcode::kConst && !inst.outs[0].empty()) {
            ++inst.imm;
            return true;
        }
    }
    return false;
}

} // namespace

VerifyReport
adviseGraph(const DataflowGraph &g)
{
    VerifyReport rep(g.name());
    analyze_detail::adviseFold(g, rep);
    analyze_detail::adviseDce(g, rep);
    analyze_detail::adviseCopyChain(g, rep);
    analyze_detail::adviseCse(g, rep);
    analyze_detail::adviseAlgebra(g, rep);
    return rep;
}

RewriteStats
optimizeGraph(DataflowGraph &g, const RewriteOptions &opts)
{
    RewriteStats stats;
    const DataflowGraph original = opts.verifyEquiv ? g : DataflowGraph();
    std::vector<bool> removedMask(g.size(), false);
    bool sabotaged = false;
    constexpr Counter kMaxRounds = 100;  // Fixpoint safety valve.
    while (stats.rounds < kMaxRounds) {
        ++stats.rounds;
        DataflowGraph snapshot;
        std::vector<bool> snapshotMask;
        if (opts.verifyEquiv) {
            snapshot = g;
            snapshotMask = removedMask;
        }
        const Counter folded = foldRound(g);
        const Counter simplified = opts.algebraic ? algebraRound(g) : 0;
        const Counter merged = opts.cse ? cseRound(g) : 0;
        const Counter bypassed = bypassRound(g);
        const Counter removed = dceRound(g, removedMask);
        if (folded + simplified + merged + bypassed + removed == 0)
            break;
        if (!sabotaged && folded + simplified + merged + bypassed != 0)
            sabotaged = sabotageForTest(g);
        if (opts.verifyEquiv) {
            const EquivResult check = checkEquivalence(snapshot, g);
            if (!check.equivalent()) {
                // Roll the round back and stop: better a missed
                // optimization than an unproven one.
                g = std::move(snapshot);
                removedMask = std::move(snapshotMask);
                ++stats.rollbacks;
                stats.rollbackDiff = check.report.render();
                break;
            }
        }
        stats.folded += folded;
        stats.simplified += simplified;
        stats.merged += merged;
        stats.bypassed += bypassed;
        stats.removed += removed;
    }
    if (stats.changed())
        g = compact(g, removedMask);
    if (opts.verifyEquiv && stats.changed()) {
        // Belt and braces: the compacted result against the original.
        const EquivResult check = checkEquivalence(original, g);
        if (!check.equivalent()) {
            g = original;
            ++stats.rollbacks;
            stats.rollbackDiff = check.report.render();
            stats.folded = stats.bypassed = stats.removed = 0;
            stats.merged = stats.simplified = 0;
        }
    }
    return stats;
}

} // namespace ws
