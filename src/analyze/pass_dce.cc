/**
 * @file
 * Dead-value detection (WS502): reverse reachability from every
 * observable effect. Sinks (program outputs) and memory operations
 * (stores are effects; loads and MEM-NOPs are load-bearing members of
 * the wave-ordering chains, which must stay intact for waves to
 * retire) are the liveness roots; an instruction none of whose
 * consumers transitively reaches a root computes a value nobody can
 * observe. Distinct from the verifier's WS301, which flags code
 * unreachable *from the inputs* — WS502 code runs, then its result
 * evaporates.
 */

#include "analyze/passes.h"
#include "verify/passes.h"

namespace ws {
namespace analyze_detail {

std::vector<bool>
liveMask(const DataflowGraph &g)
{
    std::vector<std::vector<InstId>> rev(g.size());
    for (InstId i = 0; i < g.size(); ++i) {
        for (const auto &side : g.inst(i).outs) {
            for (const PortRef &out : side) {
                if (out.inst < g.size())
                    rev[out.inst].push_back(i);
            }
        }
    }

    std::vector<bool> live(g.size(), false);
    std::vector<InstId> worklist;
    for (InstId i = 0; i < g.size(); ++i) {
        const Instruction &inst = g.inst(i);
        if (inst.op == Opcode::kSink || isMemoryOp(inst.op)) {
            live[i] = true;
            worklist.push_back(i);
        }
    }
    while (!worklist.empty()) {
        const InstId i = worklist.back();
        worklist.pop_back();
        for (const InstId p : rev[i]) {
            if (!live[p]) {
                live[p] = true;
                worklist.push_back(p);
            }
        }
    }
    return live;
}

void
adviseDce(const DataflowGraph &g, VerifyReport &rep)
{
    const std::vector<bool> live = liveMask(g);
    for (InstId i = 0; i < g.size(); ++i) {
        if (live[i])
            continue;
        rep.add(DiagCode::kDeadValue, i,
                verify_detail::msgf(
                    "%s result reaches no sink or memory effect",
                    std::string(opcodeName(g.inst(i).op)).c_str()));
    }
}

} // namespace analyze_detail
} // namespace ws
