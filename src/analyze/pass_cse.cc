/**
 * @file
 * Common-subexpression detection (WS504): two flavors of GVN-style
 * redundancy the rewriter can remove under the equivalence gate.
 *
 *   - *Congruent merge.* Two pure instructions of one thread with the
 *     same opcode, immediate, and per-port feeder multiset (producer
 *     edges by (instruction, side) plus initial-token keys) compute
 *     identical tagged value streams, so one can feed both consumer
 *     sets. One-level congruence iterated to fixpoint by the rewriter's
 *     round loop is full GVN.
 *   - *Entry-mov retarget.* A mov whose only input is initial tokens
 *     and whose consumers it feeds exclusively is pure plumbing: the
 *     tokens can be retargeted to the consumer ports directly and the
 *     mov dies. This is what shrinks the ilp-variants family, whose
 *     leaves are all token-fed movs.
 *
 * Wave-ordering chains are natural barriers: memory operations are
 * never candidates (they are effects, not values), so no merge can
 * reorder the chain.
 */

#include <algorithm>
#include <map>

#include "analyze/passes.h"
#include "verify/passes.h"

namespace ws {
namespace analyze_detail {

std::vector<std::array<std::vector<PortFeed>, 3>>
feedIndex(const DataflowGraph &g)
{
    std::vector<std::array<std::vector<PortFeed>, 3>> feeds(g.size());
    for (InstId i = 0; i < g.size(); ++i) {
        for (std::uint8_t s = 0; s < 2; ++s) {
            for (const PortRef &out : g.inst(i).outs[s]) {
                if (out.inst < g.size() && out.port < 3)
                    feeds[out.inst][out.port].push_back(PortFeed{i, s});
            }
        }
    }
    return feeds;
}

namespace {

/** Congruence key: thread, op, imm, then per port a sorted feeder
 *  multiset (producer edges and initial-token keys). */
using Key = std::vector<std::uint64_t>;

constexpr std::uint64_t kPortMark = ~std::uint64_t{0};
constexpr std::uint64_t kFeedEdge = 0;
constexpr std::uint64_t kFeedToken = 1;

} // namespace

std::vector<CseCandidate>
cseCandidates(const DataflowGraph &g)
{
    const auto feeds = feedIndex(g);
    const auto tokens = tokenPorts(g);
    std::vector<CseCandidate> candidates;

    // Entry-mov retargets first (instruction order).
    for (InstId i = 0; i < g.size(); ++i) {
        const Instruction &inst = g.inst(i);
        if (inst.op != Opcode::kMov || !feeds[i][0].empty() ||
            !tokens[i][0] || !inst.outs[1].empty() ||
            inst.outs[0].empty()) {
            continue;
        }
        bool exclusive = true;
        for (const PortRef &out : inst.outs[0]) {
            if (out.inst == i || out.inst >= g.size() || out.port >= 3 ||
                tokens[out.inst][out.port]) {
                exclusive = false;
                break;
            }
            for (const PortFeed &f : feeds[out.inst][out.port]) {
                if (f.inst != i) {
                    exclusive = false;
                    break;
                }
            }
            if (!exclusive)
                break;
        }
        if (exclusive)
            candidates.push_back(CseCandidate{i, i});
    }

    // Congruent pairs: key every eligible pure instruction and merge
    // later ids into the first occurrence.
    std::map<std::tuple<ThreadId, WaveNum, Value>, std::uint64_t> tokenIds;
    for (const Token &t : g.initialTokens()) {
        tokenIds.emplace(std::make_tuple(t.tag.thread, t.tag.wave, t.value),
                         tokenIds.size());
    }
    std::map<Key, InstId> classes;
    for (InstId i = 0; i < g.size(); ++i) {
        const Instruction &inst = g.inst(i);
        const bool pure = opcodeClass(inst.op) == OpClass::kCompute ||
                          inst.op == Opcode::kConst ||
                          inst.op == Opcode::kMov;
        if (!pure || inst.mem.valid)
            continue;
        if (inst.outs[0].empty() && inst.outs[1].empty())
            continue;  // Dead or already disconnected; DCE owns it.
        if (inst.op == Opcode::kMov && feeds[i][0].empty())
            continue;  // Entry mov: the retarget rule above owns it.
        Key key{inst.thread, static_cast<std::uint64_t>(inst.op),
                static_cast<std::uint64_t>(inst.imm)};
        bool eligible = true;
        for (std::uint8_t p = 0; p < inst.arity() && eligible; ++p) {
            key.push_back(kPortMark);
            std::vector<std::array<std::uint64_t, 3>> descs;
            for (const PortFeed &f : feeds[i][p]) {
                if (f.inst == i)
                    eligible = false;  // Self-loop: never merge.
                descs.push_back({kFeedEdge, f.inst, f.side});
            }
            for (const Token &t : g.initialTokens()) {
                if (t.dst == PortRef{i, p}) {
                    descs.push_back(
                        {kFeedToken,
                         tokenIds.at(std::make_tuple(
                             t.tag.thread, t.tag.wave, t.value)),
                         0});
                }
            }
            std::sort(descs.begin(), descs.end());
            for (const auto &d : descs)
                key.insert(key.end(), d.begin(), d.end());
        }
        if (!eligible)
            continue;
        const auto [it, inserted] = classes.emplace(std::move(key), i);
        if (inserted)
            continue;
        const InstId keep = it->second;
        // Guard against feeding each other (impossible with identical
        // keys unless self-referential; stay conservative).
        bool entangled = false;
        for (std::uint8_t s = 0; s < 2 && !entangled; ++s) {
            for (const PortRef &out : g.inst(keep).outs[s])
                entangled = entangled || out.inst == i;
            for (const PortRef &out : inst.outs[s])
                entangled = entangled || out.inst == keep;
        }
        if (!entangled)
            candidates.push_back(CseCandidate{keep, i});
    }
    return candidates;
}

void
adviseCse(const DataflowGraph &g, VerifyReport &rep)
{
    for (const CseCandidate &c : cseCandidates(g)) {
        if (c.entryMov()) {
            rep.add(DiagCode::kCommonSubexpr, c.drop,
                    "entry mov only relays initial tokens; they can "
                    "target its consumers directly");
        } else {
            rep.add(DiagCode::kCommonSubexpr, c.drop,
                    verify_detail::msgf(
                        "%s recomputes the value of inst %u (same "
                        "opcode, immediate, and feeds)",
                        std::string(opcodeName(g.inst(c.drop).op)).c_str(),
                        c.keep));
        }
    }
}

} // namespace analyze_detail
} // namespace ws
