/**
 * @file
 * Communication locality under a placement: a thin pass over
 * Placement::edgeSpans(), recorded in the profile so wsa-opt reports
 * and placement-quality comparisons share one census (Figure 8's
 * traffic-distribution axis, measured statically).
 */

#include "analyze/passes.h"

namespace ws {
namespace analyze_detail {

void
runLocality(const DataflowGraph &g, const Placement &placement,
            StaticProfile &profile)
{
    profile.spans = placement.edgeSpans(g);
    profile.hasLocality = true;
}

} // namespace analyze_detail
} // namespace ws
