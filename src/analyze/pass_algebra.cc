/**
 * @file
 * Algebraic identity / strength reduction detection (WS505).
 *
 * Immediate forms are unconditionally sound: the instruction is unary,
 * so replacing it with a mov (identity), a shift (mul by 2^k), or a
 * const (annihilator) preserves the firing set trivially.
 *
 * Register forms are sound only when erasing the literal operand's edge
 * provably keeps the firing set: an n-ary instruction fires on the
 * *intersection* of its operand tag sets, so dropping the constant's
 * feed requires its support to equal the kept operand's. The detector
 * demands the "literal rider" shape the GraphBuilder emits: the
 * constant's trigger chain (through movs and consts) must resolve to
 * the same (instruction, side) anchor as the kept operand. Divisions
 * and remainders are never strength-reduced (signed semantics), and
 * floating-point ops are never simplified (NaN breaks idempotence).
 */

#include "analyze/passes.h"
#include "verify/passes.h"

namespace ws {
namespace analyze_detail {
namespace {

/**
 * Follow single-feed chains from producer output (inst, side) to its
 * ultimate anchor. @p through_consts additionally hops through kConst
 * (which preserves support but not value): pass true when comparing
 * firing sets, false when comparing value streams.
 */
PortFeed
anchorOf(const DataflowGraph &g,
         const std::vector<std::array<std::vector<PortFeed>, 3>> &feeds,
         const std::vector<std::array<bool, 3>> &tokens, PortFeed from,
         bool through_consts)
{
    for (int depth = 0; depth < 64; ++depth) {
        if (from.side != 0)
            return from;
        const Opcode op = g.inst(from.inst).op;
        if (op != Opcode::kMov &&
            (op != Opcode::kConst || !through_consts)) {
            return from;
        }
        if (feeds[from.inst][0].size() != 1 || tokens[from.inst][0])
            return from;
        from = feeds[from.inst][0].front();
    }
    return from;
}

bool
samePortFeed(const PortFeed &a, const PortFeed &b)
{
    return a.inst == b.inst && a.side == b.side;
}

/** log2 of @p v when v is a power of two >= 2, else 0. */
Value
shiftAmount(Value v)
{
    if (v < 2 || (v & (v - 1)) != 0)
        return 0;
    Value k = 0;
    while (v > 1) {
        v >>= 1;
        ++k;
    }
    return k;
}

} // namespace

std::vector<AlgebraicRewrite>
algebraCandidates(const DataflowGraph &g)
{
    const auto feeds = feedIndex(g);
    const auto tokens = tokenPorts(g);
    std::vector<AlgebraicRewrite> candidates;

    for (InstId i = 0; i < g.size(); ++i) {
        const Instruction &inst = g.inst(i);
        if (inst.outs[0].empty() && inst.outs[1].empty())
            continue;  // Dead; DCE owns it.

        // Immediate forms: unary, unconditionally sound.
        bool matched = true;
        switch (inst.op) {
          case Opcode::kAddi:
          case Opcode::kSubi:
          case Opcode::kShli:
          case Opcode::kShri:
            if (inst.imm == 0)
                candidates.push_back({i, Opcode::kMov, 0, 0});
            else
                matched = false;
            break;
          case Opcode::kDivi:
            if (inst.imm == 1)
                candidates.push_back({i, Opcode::kMov, 0, 0});
            else
                matched = false;
            break;
          case Opcode::kMuli:
            if (inst.imm == 1)
                candidates.push_back({i, Opcode::kMov, 0, 0});
            else if (inst.imm == 0)
                candidates.push_back({i, Opcode::kConst, 0, 0});
            else if (shiftAmount(inst.imm) != 0)
                candidates.push_back(
                    {i, Opcode::kShli, shiftAmount(inst.imm), 0});
            else
                matched = false;
            break;
          case Opcode::kAndi:
            if (inst.imm == -1)
                candidates.push_back({i, Opcode::kMov, 0, 0});
            else if (inst.imm == 0)
                candidates.push_back({i, Opcode::kConst, 0, 0});
            else
                matched = false;
            break;
          default:
            matched = false;
            break;
        }
        if (matched)
            continue;

        if (inst.arity() != 2)
            continue;
        const bool singleFed = feeds[i][0].size() == 1 && !tokens[i][0] &&
                               feeds[i][1].size() == 1 && !tokens[i][1];
        if (!singleFed)
            continue;
        const PortFeed f0 = feeds[i][0].front();
        const PortFeed f1 = feeds[i][1].front();

        // Idempotent op over the same value stream (mov chains only;
        // consts change the value, so don't hop through them here).
        if (inst.op == Opcode::kAnd || inst.op == Opcode::kOr ||
            inst.op == Opcode::kMin || inst.op == Opcode::kMax) {
            if (samePortFeed(anchorOf(g, feeds, tokens, f0, false),
                             anchorOf(g, feeds, tokens, f1, false))) {
                candidates.push_back({i, Opcode::kMov, 0, 0});
                continue;
            }
        }

        // Register-form identities: one port fed by a literal whose
        // support anchor matches the kept operand's (see file comment).
        for (std::uint8_t c = 0; c < 2; ++c) {
            const PortFeed cf = (c == 0) ? f0 : f1;
            const std::uint8_t keep = static_cast<std::uint8_t>(1 - c);
            const PortFeed kf = (c == 0) ? f1 : f0;
            if (cf.side != 0 || g.inst(cf.inst).op != Opcode::kConst)
                continue;
            const Value lit = g.inst(cf.inst).imm;
            Opcode newOp = Opcode::kNop;
            Value newImm = 0;
            switch (inst.op) {
              case Opcode::kAdd:
              case Opcode::kOr:
              case Opcode::kXor:
                if (lit == 0)
                    newOp = Opcode::kMov;
                break;
              case Opcode::kSub:
              case Opcode::kShl:
              case Opcode::kShr:
                if (c == 1 && lit == 0)
                    newOp = Opcode::kMov;
                break;
              case Opcode::kMul:
                if (lit == 1) {
                    newOp = Opcode::kMov;
                } else if (lit == 0) {
                    newOp = Opcode::kConst;
                } else if (shiftAmount(lit) != 0) {
                    newOp = Opcode::kShli;
                    newImm = shiftAmount(lit);
                }
                break;
              case Opcode::kDiv:
                if (c == 1 && lit == 1)
                    newOp = Opcode::kMov;
                break;
              case Opcode::kAnd:
                if (lit == -1)
                    newOp = Opcode::kMov;
                else if (lit == 0)
                    newOp = Opcode::kConst;
                break;
              default:
                break;
            }
            if (newOp == Opcode::kNop)
                continue;
            if (!samePortFeed(
                    anchorOf(g, feeds, tokens, PortFeed{cf.inst, 0},
                             true),
                    anchorOf(g, feeds, tokens, kf, true))) {
                continue;  // Firing-set equality not provable.
            }
            candidates.push_back({i, newOp, newImm, keep});
            break;
        }
    }
    return candidates;
}

void
adviseAlgebra(const DataflowGraph &g, VerifyReport &rep)
{
    for (const AlgebraicRewrite &r : algebraCandidates(g)) {
        const char *what = "algebraic identity: result equals its "
                           "operand (becomes a mov)";
        if (r.newOp == Opcode::kShli)
            what = "strength reduction: multiply by a power of two "
                   "(becomes a shift)";
        else if (r.newOp == Opcode::kConst)
            what = "annihilator: result is always zero (becomes a "
                   "const)";
        rep.add(DiagCode::kAlgebraicIdentity, r.inst,
                verify_detail::msgf(
                    "%s: %s",
                    std::string(opcodeName(g.inst(r.inst).op)).c_str(),
                    what));
    }
}

} // namespace analyze_detail
} // namespace ws
