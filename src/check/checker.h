/**
 * @file
 * wscheck: the runtime invariant checker (the dynamic sibling of
 * src/verify).
 *
 * The static verifier proves properties of a *graph* before it runs;
 * this layer watches the *machine* while it runs. It mirrors the
 * verifier's architecture — stable WS6xx codes, collect-all report,
 * one renderer — but findings are cycle-stamped events, not
 * instruction-stamped ones.
 *
 * Layering: the checker depends only on common + the diagnostics
 * engine (ws_isa). It never includes pe/memory/core headers; instead,
 * components call the inline event hooks below, and the Processor
 * (which already sees the whole machine) walks the hierarchy and feeds
 * the structural audits plain numbers. That keeps ws_pe/ws_memory/
 * ws_core free to link against ws_check without a cycle.
 *
 * Invariant families and their codes:
 *   WS601 token conservation   created == consumed + resident at
 *                              quiescence (every token injected is
 *                              consumed, matched, or provably dead)
 *   WS602 dead tokens          resident unmatched tokens when the
 *                              program quiesced *incomplete* (resident
 *                              tokens at completed quiescence are
 *                              legal: steer feeds one side, so
 *                              partially-fed consumers remain)
 *   WS603 matching accounting  per-PE valid-row count matches a
 *                              structural recount and never exceeds
 *                              capacity
 *   WS604 wave-order           store buffers retire waves strictly
 *                              monotonically per thread
 *   WS605 MESI pair legality   across L1s, at most one E/M holder per
 *                              line and never E/M alongside S (the
 *                              only pair invariant that survives
 *                              silent clean evictions)
 *   WS606 scheduler soundness  no component changes observable state
 *                              on a cycle it was not armed for (the
 *                              key gated-clocking invariant; checked
 *                              under --always-tick at level full)
 *   WS607 queue pop contract   TimedQueue::pop(now) only removes items
 *                              whose ready cycle has arrived
 *   WS608 quiescence agreement the O(1) empty-wake-set fast path
 *                              agrees with the structural idle walk
 *
 * Checking never changes simulation behaviour at any level; the
 * StatReport stays byte-identical, violations are reported separately.
 */

#ifndef WS_CHECK_CHECKER_H_
#define WS_CHECK_CHECKER_H_

#include <cstddef>
#include <string>
#include <unordered_map>
#include <vector>

#include "check/check_level.h"
#include "common/runtime_hook.h"
#include "common/stats.h"
#include "common/types.h"
#include "verify/diagnostic.h"

namespace ws {

/**
 * The check level a simulation should actually run at: the configured
 * level, unless it is kOff and the WS_CHECK environment variable
 * ("off" | "cheap" | "full", read once per process) raises it. The
 * override lets CI run the entire existing suite under full checking
 * without touching any test; explicitly-configured non-off levels
 * always win. The config fingerprint keeps the *configured* value —
 * checking never changes statistics, so cache aliasing across
 * env-raised levels is harmless.
 */
CheckLevel effectiveCheckLevel(CheckLevel configured);

/** One runtime finding: a WS6xx code stamped with the cycle and the
 *  component ("cluster 2 sb", "pe (0,1,3)") it was observed at. */
struct CheckEvent
{
    DiagCode code;
    Cycle cycle = 0;
    std::string where;
    std::string message;
};

/**
 * Collect-all result of one checked simulation (mirrors VerifyReport).
 * Every violation is counted; per code, only the first
 * kMaxStoredPerCode events keep their full text, so a hot broken
 * invariant cannot balloon memory.
 */
class CheckReport
{
  public:
    static constexpr std::size_t kMaxStoredPerCode = 32;

    /** Record one violation of @p code observed at @p cycle. */
    void add(DiagCode code, Cycle cycle, std::string where,
             std::string message);

    /** True when no violation was recorded. */
    bool ok() const { return total_ == 0; }

    /** Total violations (including ones beyond the storage cap). */
    std::size_t violationCount() const { return total_; }

    /** Occurrences of @p code. */
    std::size_t count(DiagCode code) const;
    bool has(DiagCode code) const { return count(code) != 0; }

    const std::vector<CheckEvent> &events() const { return events_; }

    /**
     * Render every stored finding, one line each:
     *
     *   check[WS604] cycle 1042 @ cluster 0 sb: wave 3 retired after 5
     *
     * followed by a summary line. Returns "" when the report is empty.
     */
    std::string render() const;

    /** "3 violations (WS601 x1, WS604 x2)"-style roll-up. */
    std::string summary() const;

  private:
    std::vector<CheckEvent> events_;
    std::unordered_map<std::uint16_t, std::size_t> countByCode_;
    std::size_t total_ = 0;
};

/**
 * The per-simulation runtime checker. Owned by the Processor when
 * ProcessorConfig::checkLevel != kOff; every hook site in the machine
 * holds a raw pointer that is null when checking is off, so the
 * off-level cost is one branch per site.
 */
class RuntimeChecker : public QueueCheckHook
{
  public:
    explicit RuntimeChecker(CheckLevel level) : level_(level) {}

    CheckLevel level() const { return level_; }
    bool cheap() const { return level_ >= CheckLevel::kCheap; }
    bool full() const { return level_ == CheckLevel::kFull; }

    // ---- event hooks (inline; called from the machine's hot paths) ----

    /** @p n tokens entered the machine (initial injection, PE fan-out,
     *  or load-reply fan-out). */
    void onTokensCreated(Counter n) { created_ += n; }

    /** A fired instruction consumed @p n operand tokens. */
    void onTokensConsumed(Counter n) { consumed_ += n; }

    /** Store buffer @p sb retired @p wave for @p thread (WS604). */
    void onWaveRetired(ClusterId sb, ThreadId thread, WaveNum wave,
                       Cycle now);

    /** QueueCheckHook: a timed queue popped an item (WS607). */
    void
    onQueuePop(Cycle ready, Cycle now) override
    {
        if (ready > now)
            recordPopEarly(ready, now);
    }

    /** A non-due component's tick changed observable state (WS606). */
    void onUnarmedWork(const std::string &what, Cycle now);

    /** The quiescence fast path contradicted the full walk (WS608). */
    void onQuiescenceMismatch(bool fast_path, Cycle now);

    // ---- structural audits (fed plain numbers by the Processor) ----

    /**
     * WS603: one matching table's accounting. @p valid is the cached
     * valid-row count, @p recount the structural recount, @p capacity
     * the configured row count.
     */
    void auditMatching(const std::string &where, std::size_t valid,
                       std::size_t recount, std::size_t capacity,
                       Cycle now);

    /**
     * WS601/WS602: conservation at quiescence. @p resident is the
     * machine-wide count of operand tokens held in matching tables
     * (cache + overflow); @p completed whether the program delivered
     * its expected sink tokens.
     */
    void auditConservation(Counter resident, bool completed, Cycle now);

    /** WS605: record one illegal MESI pair the Processor's scan found. */
    void onIllegalMesiPair(Addr line, unsigned em_holders,
                           unsigned s_holders, Cycle now);

    Counter tokensCreated() const { return created_; }
    Counter tokensConsumed() const { return consumed_; }

    const CheckReport &report() const { return report_; }

  private:
    void recordPopEarly(Cycle ready, Cycle now);

    CheckLevel level_;
    CheckReport report_;
    Counter created_ = 0;
    Counter consumed_ = 0;
    /** (store buffer, thread) → highest wave retired so far. */
    std::unordered_map<std::uint64_t, WaveNum> lastRetired_;
};

} // namespace ws

#endif // WS_CHECK_CHECKER_H_
