/**
 * @file
 * The runtime-checker enablement level (src/check/checker.h).
 *
 * Kept standalone (no dependencies beyond <cstdint>) so that
 * core/config.h can carry a CheckLevel field without the core layer
 * depending on the checker implementation.
 */

#ifndef WS_CHECK_CHECK_LEVEL_H_
#define WS_CHECK_CHECK_LEVEL_H_

#include <cstdint>
#include <cstring>

namespace ws {

/**
 * How much dynamic invariant checking a simulation performs.
 *
 *  - kOff: no checker is constructed; the only residual cost is a
 *    null-pointer test on a handful of hook sites. Output is
 *    byte-identical to a build that never heard of wscheck.
 *  - kCheap: O(1) event hooks (token conservation counters, wave-order
 *    monotonicity, timed-queue pop contracts) plus the quiescence
 *    audits that run once per quiescence detection.
 *  - kFull: everything in kCheap plus periodic structural audits
 *    (matching-table accounting, cross-L1 MESI pair legality), the
 *    quiescence fast-path cross-check, and — under --always-tick —
 *    the unarmed-work scheduler-soundness check.
 *
 * Checking never changes simulation behaviour: every level produces a
 * byte-identical StatReport; levels differ only in what violations
 * they can detect.
 */
enum class CheckLevel : std::uint8_t
{
    kOff = 0,
    kCheap = 1,
    kFull = 2,
};

/** "off"/"cheap"/"full" name for @p level. */
inline const char *
checkLevelName(CheckLevel level)
{
    switch (level) {
      case CheckLevel::kOff:
        return "off";
      case CheckLevel::kCheap:
        return "cheap";
      case CheckLevel::kFull:
        return "full";
    }
    return "?";
}

/** Parse "off"/"cheap"/"full" into @p out; false on anything else. */
inline bool
parseCheckLevel(const char *s, CheckLevel *out)
{
    if (std::strcmp(s, "off") == 0) {
        *out = CheckLevel::kOff;
        return true;
    }
    if (std::strcmp(s, "cheap") == 0) {
        *out = CheckLevel::kCheap;
        return true;
    }
    if (std::strcmp(s, "full") == 0) {
        *out = CheckLevel::kFull;
        return true;
    }
    return false;
}

} // namespace ws

#endif // WS_CHECK_CHECK_LEVEL_H_
