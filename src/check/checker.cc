#include "check/checker.h"

#include <cstdlib>
#include <sstream>

namespace ws {

CheckLevel
effectiveCheckLevel(CheckLevel configured)
{
    if (configured != CheckLevel::kOff)
        return configured;
    // Read and parse WS_CHECK once; a malformed value is ignored (the
    // harnesses expose --check for explicit control).
    static const CheckLevel env_level = [] {
        CheckLevel parsed = CheckLevel::kOff;
        const char *env = std::getenv("WS_CHECK");
        if (env != nullptr)
            parseCheckLevel(env, &parsed);
        return parsed;
    }();
    return env_level;
}

void
CheckReport::add(DiagCode code, Cycle cycle, std::string where,
                 std::string message)
{
    const std::size_t seen =
        countByCode_[static_cast<std::uint16_t>(code)]++;
    ++total_;
    if (seen < kMaxStoredPerCode) {
        events_.push_back(CheckEvent{code, cycle, std::move(where),
                                     std::move(message)});
    }
}

std::size_t
CheckReport::count(DiagCode code) const
{
    auto it = countByCode_.find(static_cast<std::uint16_t>(code));
    return it == countByCode_.end() ? 0 : it->second;
}

std::string
CheckReport::summary() const
{
    std::ostringstream out;
    out << total_ << (total_ == 1 ? " violation" : " violations");
    if (total_ != 0) {
        out << " (";
        bool first = true;
        // Report per-code counts in ascending code order for stable
        // output (the map iteration order is not deterministic).
        for (DiagCode code : allDiagCodes()) {
            const std::size_t n = count(code);
            if (n == 0)
                continue;
            if (!first)
                out << ", ";
            out << diagCodeLabel(code) << " x" << n;
            first = false;
        }
        out << ")";
    }
    return out.str();
}

std::string
CheckReport::render() const
{
    if (total_ == 0)
        return "";
    std::ostringstream out;
    for (const CheckEvent &e : events_) {
        out << "check[" << diagCodeLabel(e.code) << "] cycle " << e.cycle;
        if (!e.where.empty())
            out << " @ " << e.where;
        out << ": " << e.message << "\n";
    }
    if (events_.size() < total_) {
        out << "... " << (total_ - events_.size())
            << " further events not stored\n";
    }
    out << summary() << "\n";
    return out.str();
}

void
RuntimeChecker::onWaveRetired(ClusterId sb, ThreadId thread, WaveNum wave,
                              Cycle now)
{
    const std::uint64_t key =
        (static_cast<std::uint64_t>(sb) << 16) | thread;
    auto [it, inserted] = lastRetired_.try_emplace(key, wave);
    if (!inserted) {
        // Strictly increasing per thread; gaps are legal (a thread may
        // skip waves that carry no memory operations).
        if (wave <= it->second) {
            std::ostringstream msg;
            msg << "thread " << thread << " retired wave " << wave
                << " at or below already-retired wave " << it->second;
            report_.add(DiagCode::kWaveOrderRegression, now,
                        "cluster " + std::to_string(sb) + " sb",
                        msg.str());
            return;
        }
        it->second = wave;
    }
}

void
RuntimeChecker::recordPopEarly(Cycle ready, Cycle now)
{
    std::ostringstream msg;
    msg << "item with ready cycle " << ready << " popped at cycle "
        << now;
    report_.add(DiagCode::kQueuePopEarly, now, "timed queue", msg.str());
}

void
RuntimeChecker::onUnarmedWork(const std::string &what, Cycle now)
{
    report_.add(DiagCode::kUnarmedWork, now, what,
                "observable state changed on a tick the scheduler had "
                "not armed this component for");
}

void
RuntimeChecker::onQuiescenceMismatch(bool fast_path, Cycle now)
{
    report_.add(DiagCode::kQuiescenceMismatch, now, "processor",
                fast_path
                    ? "empty wake set claimed quiescence but the "
                      "structural walk found live state"
                    : "structural walk found the machine idle while "
                      "components remain armed with due work");
}

void
RuntimeChecker::auditMatching(const std::string &where, std::size_t valid,
                              std::size_t recount, std::size_t capacity,
                              Cycle now)
{
    if (valid != recount) {
        std::ostringstream msg;
        msg << "cached valid-row count " << valid
            << " != structural recount " << recount;
        report_.add(DiagCode::kMatchAccounting, now, where, msg.str());
    }
    if (recount > capacity) {
        std::ostringstream msg;
        msg << recount << " valid rows exceed the " << capacity
            << "-row capacity";
        report_.add(DiagCode::kMatchAccounting, now, where, msg.str());
    }
}

void
RuntimeChecker::auditConservation(Counter resident, bool completed,
                                  Cycle now)
{
    if (created_ != consumed_ + resident) {
        std::ostringstream msg;
        msg << "created " << created_ << " != consumed " << consumed_
            << " + resident " << resident << " (delta "
            << (static_cast<std::int64_t>(created_) -
                static_cast<std::int64_t>(consumed_ + resident))
            << ")";
        report_.add(DiagCode::kTokenConservation, now, "processor",
                    msg.str());
    }
    // Resident unmatched tokens at *completed* quiescence are legal:
    // steer emits on one side only, so consumers on the untaken path
    // keep partially-filled rows forever. They are a bug report only
    // when the program could not finish — the tokens that would have
    // completed it are provably dead.
    if (!completed && resident != 0) {
        std::ostringstream msg;
        msg << resident << " operand tokens remain in matching tables "
            << "but the machine is quiescent: they can never match";
        report_.add(DiagCode::kDeadTokens, now, "processor", msg.str());
    }
}

void
RuntimeChecker::onIllegalMesiPair(Addr line, unsigned em_holders,
                                  unsigned s_holders, Cycle now)
{
    std::ostringstream msg;
    msg << "line 0x" << std::hex << line << std::dec << ": "
        << em_holders << " L1(s) in E/M alongside " << s_holders
        << " in S";
    report_.add(DiagCode::kIllegalMesiPair, now, "coherence", msg.str());
}

} // namespace ws
