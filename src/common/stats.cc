#include "common/stats.h"

#include <cstdio>

#include "common/log.h"

namespace ws {

void
StatReport::add(const std::string &name, double value)
{
    auto it = index_.find(name);
    if (it != index_.end()) {
        entries_[it->second].second = value;
        return;
    }
    index_.emplace(name, entries_.size());
    entries_.emplace_back(name, value);
}

void
StatReport::add(const std::string &name, Counter value)
{
    add(name, static_cast<double>(value));
}

double
StatReport::get(const std::string &name) const
{
    auto it = index_.find(name);
    if (it == index_.end())
        fatal("StatReport: no statistic named '%s'", name.c_str());
    return entries_[it->second].second;
}

bool
StatReport::has(const std::string &name) const
{
    return index_.count(name) != 0;
}

double
StatReport::sumPrefix(const std::string &prefix) const
{
    double total = 0.0;
    for (const auto &[name, value] : entries_) {
        if (name.rfind(prefix, 0) == 0)
            total += value;
    }
    return total;
}

void
StatReport::merge(const StatReport &other, const std::string &prefix)
{
    for (const auto &[name, value] : other.entries_)
        add(prefix.empty() ? name : prefix + "." + name, value);
}

std::string
StatReport::toString() const
{
    std::size_t width = 0;
    for (const auto &[name, value] : entries_)
        width = std::max(width, name.size());
    std::string out;
    char buf[64];
    for (const auto &[name, value] : entries_) {
        out += name;
        out.append(width - name.size() + 2, ' ');
        // Print integers without a fraction for readability.
        if (value == static_cast<double>(static_cast<long long>(value)))
            std::snprintf(buf, sizeof(buf), "%lld",
                          static_cast<long long>(value));
        else
            std::snprintf(buf, sizeof(buf), "%.6g", value);
        out += buf;
        out += '\n';
    }
    return out;
}

} // namespace ws
