/**
 * @file
 * Minimal logging and error-termination helpers, in the spirit of gem5's
 * base/logging.hh.
 *
 * panic()  — an internal simulator invariant was violated (a wavefabric
 *            bug); aborts so a debugger or core dump can catch it.
 * fatal()  — the *user's* configuration or input is unusable; exits with
 *            an error code, no core dump.
 * warn()   — something is suspicious but simulation can continue.
 * inform() — plain status output.
 */

#ifndef WS_COMMON_LOG_H_
#define WS_COMMON_LOG_H_

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace ws {

/** Exception thrown by fatal(); tests catch it instead of dying. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &what) : std::runtime_error(what) {}
};

/** Exception thrown by panic(); tests catch it instead of aborting. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &what) : std::logic_error(what) {}
};

namespace detail {

std::string vformat(const char *fmt, std::va_list ap);

} // namespace detail

/**
 * Report an unrecoverable simulator bug. Throws PanicError so that unit
 * tests can assert on invariant violations; uncaught, it terminates.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report an unrecoverable user error (bad configuration, bad workload).
 * Throws FatalError.
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print a warning to stderr and continue. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print an informational message to stderr and continue. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Globally silence warn()/inform() (benchmarks use this). */
void setQuiet(bool quiet);

} // namespace ws

#endif // WS_COMMON_LOG_H_
