#include "common/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace ws {

Json &
Json::operator[](const std::string &key)
{
    if (type_ == Type::kNull)
        type_ = Type::kObject;
    auto it = index_.find(key);
    if (it != index_.end())
        return fields_[it->second].second;
    index_.emplace(key, fields_.size());
    fields_.emplace_back(key, Json());
    return fields_.back().second;
}

const Json *
Json::find(const std::string &key) const
{
    auto it = index_.find(key);
    return it == index_.end() ? nullptr : &fields_[it->second].second;
}

void
Json::push(Json value)
{
    if (type_ == Type::kNull)
        type_ = Type::kArray;
    items_.push_back(std::move(value));
}

std::size_t
Json::size() const
{
    return type_ == Type::kArray ? items_.size() : fields_.size();
}

namespace {

void
appendEscaped(std::string &out, const std::string &s)
{
    out += '"';
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

void
appendNumber(std::string &out, double v)
{
    if (!std::isfinite(v)) {
        out += "null";  // JSON has no inf/nan; null is the least-wrong.
        return;
    }
    if (v == static_cast<double>(static_cast<long long>(v)) &&
        std::fabs(v) < 9.0e15) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%lld",
                      static_cast<long long>(v));
        out += buf;
        return;
    }
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.10g", v);
    out += buf;
}

void
appendIndent(std::string &out, int indent, int depth)
{
    if (indent > 0) {
        out += '\n';
        out.append(static_cast<std::size_t>(indent) * depth, ' ');
    }
}

} // namespace

void
Json::dumpTo(std::string &out, int indent, int depth) const
{
    switch (type_) {
      case Type::kNull:
        out += "null";
        break;
      case Type::kBool:
        out += bool_ ? "true" : "false";
        break;
      case Type::kNumber:
        appendNumber(out, num_);
        break;
      case Type::kString:
        appendEscaped(out, str_);
        break;
      case Type::kArray: {
        out += '[';
        for (std::size_t i = 0; i < items_.size(); ++i) {
            if (i != 0)
                out += ',';
            appendIndent(out, indent, depth + 1);
            items_[i].dumpTo(out, indent, depth + 1);
        }
        if (!items_.empty())
            appendIndent(out, indent, depth);
        out += ']';
        break;
      }
      case Type::kObject: {
        out += '{';
        for (std::size_t i = 0; i < fields_.size(); ++i) {
            if (i != 0)
                out += ',';
            appendIndent(out, indent, depth + 1);
            appendEscaped(out, fields_[i].first);
            out += indent > 0 ? ": " : ":";
            fields_[i].second.dumpTo(out, indent, depth + 1);
        }
        if (!fields_.empty())
            appendIndent(out, indent, depth);
        out += '}';
        break;
      }
    }
}

std::string
Json::dump(int indent) const
{
    std::string out;
    dumpTo(out, indent, 0);
    return out;
}

namespace {

struct Parser
{
    const char *p;
    const char *end;
    bool ok = true;

    void
    skipWs()
    {
        while (p < end && std::isspace(static_cast<unsigned char>(*p)))
            ++p;
    }

    bool
    consume(char c)
    {
        skipWs();
        if (p < end && *p == c) {
            ++p;
            return true;
        }
        return false;
    }

    bool
    literal(const char *lit)
    {
        const char *q = p;
        while (*lit != '\0') {
            if (q >= end || *q != *lit)
                return false;
            ++q;
            ++lit;
        }
        p = q;
        return true;
    }

    Json
    parseString()
    {
        std::string s;
        ++p;  // Opening quote (caller checked).
        while (p < end && *p != '"') {
            if (*p == '\\' && p + 1 < end) {
                ++p;
                switch (*p) {
                  case 'n': s += '\n'; break;
                  case 't': s += '\t'; break;
                  case 'r': s += '\r'; break;
                  case 'b': s += '\b'; break;
                  case 'f': s += '\f'; break;
                  case 'u': {
                    if (end - p < 5) {
                        ok = false;
                        return Json();
                    }
                    char hex[5] = {p[1], p[2], p[3], p[4], 0};
                    const long code = std::strtol(hex, nullptr, 16);
                    // Basic-latin escapes only; others pass through
                    // as '?' (the harnesses never emit them).
                    s += code < 0x80 ? static_cast<char>(code) : '?';
                    p += 4;
                    break;
                  }
                  default: s += *p; break;
                }
                ++p;
            } else {
                s += *p++;
            }
        }
        if (p >= end) {
            ok = false;
            return Json();
        }
        ++p;  // Closing quote.
        return Json(std::move(s));
    }

    Json
    parseValue(int depth)
    {
        if (depth > 64) {
            ok = false;
            return Json();
        }
        skipWs();
        if (p >= end) {
            ok = false;
            return Json();
        }
        if (*p == '"')
            return parseString();
        if (*p == '{') {
            ++p;
            Json obj = Json::object();
            skipWs();
            if (consume('}'))
                return obj;
            do {
                skipWs();
                if (p >= end || *p != '"') {
                    ok = false;
                    return Json();
                }
                Json key = parseString();
                if (!ok || !consume(':')) {
                    ok = false;
                    return Json();
                }
                obj[key.asString()] = parseValue(depth + 1);
                if (!ok)
                    return Json();
            } while (consume(','));
            if (!consume('}'))
                ok = false;
            return obj;
        }
        if (*p == '[') {
            ++p;
            Json arr = Json::array();
            skipWs();
            if (consume(']'))
                return arr;
            do {
                arr.push(parseValue(depth + 1));
                if (!ok)
                    return Json();
            } while (consume(','));
            if (!consume(']'))
                ok = false;
            return arr;
        }
        if (literal("true"))
            return Json(true);
        if (literal("false"))
            return Json(false);
        if (literal("null"))
            return Json();
        char *num_end = nullptr;
        const double v = std::strtod(p, &num_end);
        if (num_end == p || num_end > end) {
            ok = false;
            return Json();
        }
        p = num_end;
        return Json(v);
    }
};

} // namespace

Json
Json::parse(const std::string &text, bool *ok)
{
    Parser parser{text.data(), text.data() + text.size()};
    Json v = parser.parseValue(0);
    parser.skipWs();
    const bool good = parser.ok && parser.p == parser.end;
    if (ok != nullptr)
        *ok = good;
    return good ? v : Json();
}

} // namespace ws
