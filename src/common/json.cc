#include "common/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/log.h"

namespace ws {

namespace {

const char *
typeName(Json::Type t)
{
    switch (t) {
      case Json::Type::kNull: return "null";
      case Json::Type::kBool: return "bool";
      case Json::Type::kNumber: return "number";
      case Json::Type::kString: return "string";
      case Json::Type::kArray: return "array";
      case Json::Type::kObject: return "object";
    }
    return "?";
}

} // namespace

Json &
Json::operator[](const std::string &key)
{
    if (type_ == Type::kNull)
        type_ = Type::kObject;
    // Fields appended to a number/string/array would never be emitted
    // by dumpTo — silent data loss. Fail fast instead.
    if (type_ != Type::kObject) {
        fatal("Json: operator[](\"%s\") on a %s value (only objects "
              "have fields)", key.c_str(), typeName(type_));
    }
    auto it = index_.find(key);
    if (it != index_.end())
        return fields_[it->second].second;
    index_.emplace(key, fields_.size());
    fields_.emplace_back(key, Json());
    return fields_.back().second;
}

const Json *
Json::find(const std::string &key) const
{
    auto it = index_.find(key);
    return it == index_.end() ? nullptr : &fields_[it->second].second;
}

void
Json::push(Json value)
{
    if (type_ == Type::kNull)
        type_ = Type::kArray;
    items_.push_back(std::move(value));
}

std::size_t
Json::size() const
{
    return type_ == Type::kArray ? items_.size() : fields_.size();
}

namespace {

void
appendEscaped(std::string &out, const std::string &s)
{
    out += '"';
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

void
appendNumber(std::string &out, double v)
{
    if (!std::isfinite(v)) {
        out += "null";  // JSON has no inf/nan; null is the least-wrong.
        return;
    }
    if (v == static_cast<double>(static_cast<long long>(v)) &&
        std::fabs(v) < 9.0e15) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%lld",
                      static_cast<long long>(v));
        out += buf;
        return;
    }
    // Shortest decimal form that parses back to exactly this double:
    // persisted results (driver/disk_cache) are replayed through
    // Json::parse and must compare bit-equal to the fresh run.
    char buf[40];
    for (int prec = 15; prec <= 17; ++prec) {
        std::snprintf(buf, sizeof buf, "%.*g", prec, v);
        if (std::strtod(buf, nullptr) == v)
            break;
    }
    out += buf;
}

void
appendIndent(std::string &out, int indent, int depth)
{
    if (indent > 0) {
        out += '\n';
        out.append(static_cast<std::size_t>(indent) * depth, ' ');
    }
}

} // namespace

void
Json::dumpTo(std::string &out, int indent, int depth) const
{
    switch (type_) {
      case Type::kNull:
        out += "null";
        break;
      case Type::kBool:
        out += bool_ ? "true" : "false";
        break;
      case Type::kNumber:
        appendNumber(out, num_);
        break;
      case Type::kString:
        appendEscaped(out, str_);
        break;
      case Type::kArray: {
        out += '[';
        for (std::size_t i = 0; i < items_.size(); ++i) {
            if (i != 0)
                out += ',';
            appendIndent(out, indent, depth + 1);
            items_[i].dumpTo(out, indent, depth + 1);
        }
        if (!items_.empty())
            appendIndent(out, indent, depth);
        out += ']';
        break;
      }
      case Type::kObject: {
        out += '{';
        for (std::size_t i = 0; i < fields_.size(); ++i) {
            if (i != 0)
                out += ',';
            appendIndent(out, indent, depth + 1);
            appendEscaped(out, fields_[i].first);
            out += indent > 0 ? ": " : ":";
            fields_[i].second.dumpTo(out, indent, depth + 1);
        }
        if (!fields_.empty())
            appendIndent(out, indent, depth);
        out += '}';
        break;
      }
    }
}

std::string
Json::dump(int indent) const
{
    std::string out;
    dumpTo(out, indent, 0);
    return out;
}

namespace {

/** Parse exactly four hex digits at @p q; false on any non-hex char
 *  (strtol would silently accept a shorter prefix). */
bool
hex4(const char *q, unsigned *out)
{
    unsigned v = 0;
    for (int i = 0; i < 4; ++i) {
        const char c = q[i];
        unsigned digit = 0;
        if (c >= '0' && c <= '9')
            digit = static_cast<unsigned>(c - '0');
        else if (c >= 'a' && c <= 'f')
            digit = static_cast<unsigned>(c - 'a') + 10;
        else if (c >= 'A' && c <= 'F')
            digit = static_cast<unsigned>(c - 'A') + 10;
        else
            return false;
        v = v * 16 + digit;
    }
    *out = v;
    return true;
}

void
appendUtf8(std::string &s, unsigned cp)
{
    if (cp < 0x80) {
        s += static_cast<char>(cp);
    } else if (cp < 0x800) {
        s += static_cast<char>(0xC0 | (cp >> 6));
        s += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
        s += static_cast<char>(0xE0 | (cp >> 12));
        s += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
        s += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
        s += static_cast<char>(0xF0 | (cp >> 18));
        s += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
        s += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
        s += static_cast<char>(0x80 | (cp & 0x3F));
    }
}

struct Parser
{
    const char *p;
    const char *end;
    bool ok = true;

    void
    skipWs()
    {
        while (p < end && std::isspace(static_cast<unsigned char>(*p)))
            ++p;
    }

    bool
    consume(char c)
    {
        skipWs();
        if (p < end && *p == c) {
            ++p;
            return true;
        }
        return false;
    }

    bool
    literal(const char *lit)
    {
        const char *q = p;
        while (*lit != '\0') {
            if (q >= end || *q != *lit)
                return false;
            ++q;
            ++lit;
        }
        p = q;
        return true;
    }

    Json
    parseString()
    {
        std::string s;
        ++p;  // Opening quote (caller checked).
        while (p < end && *p != '"') {
            if (*p == '\\' && p + 1 < end) {
                ++p;
                switch (*p) {
                  case 'n': s += '\n'; break;
                  case 't': s += '\t'; break;
                  case 'r': s += '\r'; break;
                  case 'b': s += '\b'; break;
                  case 'f': s += '\f'; break;
                  case 'u': {
                    unsigned cp = 0;
                    if (end - p < 5 || !hex4(p + 1, &cp)) {
                        ok = false;
                        return Json();
                    }
                    p += 4;  // Now at the last hex digit.
                    if (cp >= 0xD800 && cp <= 0xDBFF) {
                        // Lead surrogate: the trail must follow
                        // immediately as another \uXXXX escape.
                        unsigned trail = 0;
                        if (end - p < 7 || p[1] != '\\' || p[2] != 'u' ||
                            !hex4(p + 3, &trail) || trail < 0xDC00 ||
                            trail > 0xDFFF) {
                            ok = false;
                            return Json();
                        }
                        cp = 0x10000 + ((cp - 0xD800) << 10) +
                             (trail - 0xDC00);
                        p += 6;
                    } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
                        ok = false;  // Unpaired trail surrogate.
                        return Json();
                    }
                    appendUtf8(s, cp);
                    break;
                  }
                  default: s += *p; break;
                }
                ++p;
            } else {
                s += *p++;
            }
        }
        if (p >= end) {
            ok = false;
            return Json();
        }
        ++p;  // Closing quote.
        return Json(std::move(s));
    }

    Json
    parseValue(int depth)
    {
        if (depth > 64) {
            ok = false;
            return Json();
        }
        skipWs();
        if (p >= end) {
            ok = false;
            return Json();
        }
        if (*p == '"')
            return parseString();
        if (*p == '{') {
            ++p;
            Json obj = Json::object();
            skipWs();
            if (consume('}'))
                return obj;
            do {
                skipWs();
                if (p >= end || *p != '"') {
                    ok = false;
                    return Json();
                }
                Json key = parseString();
                if (!ok || !consume(':')) {
                    ok = false;
                    return Json();
                }
                obj[key.asString()] = parseValue(depth + 1);
                if (!ok)
                    return Json();
            } while (consume(','));
            if (!consume('}'))
                ok = false;
            return obj;
        }
        if (*p == '[') {
            ++p;
            Json arr = Json::array();
            skipWs();
            if (consume(']'))
                return arr;
            do {
                arr.push(parseValue(depth + 1));
                if (!ok)
                    return Json();
            } while (consume(','));
            if (!consume(']'))
                ok = false;
            return arr;
        }
        if (literal("true"))
            return Json(true);
        if (literal("false"))
            return Json(false);
        if (literal("null"))
            return Json();
        char *num_end = nullptr;
        const double v = std::strtod(p, &num_end);
        if (num_end == p || num_end > end) {
            ok = false;
            return Json();
        }
        p = num_end;
        return Json(v);
    }
};

} // namespace

Json
Json::parse(const std::string &text, bool *ok)
{
    Parser parser{text.data(), text.data() + text.size()};
    Json v = parser.parseValue(0);
    parser.skipWs();
    const bool good = parser.ok && parser.p == parser.end;
    if (ok != nullptr)
        *ok = good;
    return good ? v : Json();
}

} // namespace ws
