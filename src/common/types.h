/**
 * @file
 * Fundamental scalar types and identifiers shared by every wavefabric
 * module. Keeping these in one small header avoids circular includes
 * between the ISA, execution, and memory subsystems.
 */

#ifndef WS_COMMON_TYPES_H_
#define WS_COMMON_TYPES_H_

#include <cstdint>
#include <limits>

namespace ws {

/** Simulation time, in processor clock cycles. */
using Cycle = std::uint64_t;

/** A byte address in the simulated memory space. */
using Addr = std::uint64_t;

/** The 64-bit data value carried by a dataflow token. */
using Value = std::int64_t;

/** Index of a static instruction within a dataflow graph. */
using InstId = std::uint32_t;

/** Dynamic wave number; part of a token's tag. */
using WaveNum = std::uint32_t;

/** Software thread identifier; part of a token's tag. */
using ThreadId = std::uint16_t;

/** Flattened identifiers for the tile hierarchy. */
using ClusterId = std::uint16_t;
using DomainId = std::uint16_t;   ///< Domain index within its cluster.
using PeId = std::uint16_t;       ///< PE index within its domain.

/** Sentinel meaning "no instruction". */
constexpr InstId kInvalidInst = std::numeric_limits<InstId>::max();

/** Sentinel meaning "never" / "not yet". */
constexpr Cycle kCycleNever = std::numeric_limits<Cycle>::max();

/**
 * Globally flat PE coordinate. Identifies one processing element in the
 * whole processor (cluster, domain within cluster, PE within domain).
 * Pseudo-PEs (MEM, NET) use indices >= the per-domain PE count and are
 * addressed through their own message types, never through PeCoord.
 */
struct PeCoord
{
    ClusterId cluster = 0;
    DomainId domain = 0;
    PeId pe = 0;

    bool operator==(const PeCoord &) const = default;
    auto operator<=>(const PeCoord &) const = default;

    /** True when both coordinates name PEs in the same domain. */
    bool
    sameDomain(const PeCoord &o) const
    {
        return cluster == o.cluster && domain == o.domain;
    }

    /** True when both coordinates name PEs in the same cluster. */
    bool sameCluster(const PeCoord &o) const { return cluster == o.cluster; }
};

} // namespace ws

#endif // WS_COMMON_TYPES_H_
