#include "common/log.h"

#include <atomic>
#include <cstdarg>
#include <cstdio>
#include <vector>

namespace ws {

namespace {

std::atomic<bool> quietFlag{false};

} // namespace

namespace detail {

std::string
vformat(const char *fmt, std::va_list ap)
{
    std::va_list ap_copy;
    va_copy(ap_copy, ap);
    int needed = std::vsnprintf(nullptr, 0, fmt, ap_copy);
    va_end(ap_copy);
    if (needed < 0)
        return std::string(fmt);
    std::vector<char> buf(static_cast<size_t>(needed) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap);
    return std::string(buf.data(), static_cast<size_t>(needed));
}

} // namespace detail

void
panic(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::string msg = detail::vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    throw PanicError(msg);
}

void
fatal(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::string msg = detail::vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    throw FatalError(msg);
}

void
warn(const char *fmt, ...)
{
    if (quietFlag.load(std::memory_order_relaxed))
        return;
    std::va_list ap;
    va_start(ap, fmt);
    std::string msg = detail::vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
inform(const char *fmt, ...)
{
    if (quietFlag.load(std::memory_order_relaxed))
        return;
    std::va_list ap;
    va_start(ap, fmt);
    std::string msg = detail::vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "info: %s\n", msg.c_str());
}

void
setQuiet(bool quiet)
{
    quietFlag.store(quiet, std::memory_order_relaxed);
}

} // namespace ws
