#include "common/runtime_hook.h"

namespace ws {

thread_local QueueCheckHook *tlsQueueCheckHook = nullptr;

} // namespace ws
