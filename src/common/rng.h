/**
 * @file
 * Deterministic pseudo-random number generator (xoshiro256**).
 *
 * Simulation results must be bit-reproducible across runs and platforms,
 * so wavefabric never uses std::random_device or rand(); every stochastic
 * choice (workload data, random placement baseline, traffic jitter) draws
 * from an explicitly seeded Rng.
 */

#ifndef WS_COMMON_RNG_H_
#define WS_COMMON_RNG_H_

#include <cstdint>

namespace ws {

/**
 * splitmix64 finalizer: a full-avalanche 64-bit mix. mix64(0) == 0,
 * which the matching-table set hash relies on (thread 0 keeps the
 * paper's unperturbed I*k + wave%k layout).
 */
inline std::uint64_t
mix64(std::uint64_t x)
{
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/** Boost-style order-dependent hash combine over mix64. */
inline std::uint64_t
hashCombine(std::uint64_t seed, std::uint64_t value)
{
    return seed ^ (mix64(value) + 0x9e3779b97f4a7c15ULL + (seed << 6) +
                   (seed >> 2));
}

/** xoshiro256** by Blackman & Vigna; public-domain reference algorithm. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

    /** Re-initialize state from a 64-bit seed via splitmix64. */
    void
    reseed(std::uint64_t seed)
    {
        for (auto &word : state_) {
            seed += 0x9e3779b97f4a7c15ULL;
            std::uint64_t z = seed;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound); bound must be nonzero. */
    std::uint64_t
    range(std::uint64_t bound)
    {
        // Lemire's nearly-divisionless mapping; bias is negligible for
        // the bounds used in simulation (<< 2^32).
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(next()) * bound) >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t
    rangeInclusive(std::int64_t lo, std::int64_t hi)
    {
        return lo + static_cast<std::int64_t>(
            range(static_cast<std::uint64_t>(hi - lo) + 1));
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw with probability p of returning true. */
    bool chance(double p) { return uniform() < p; }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4];
};

} // namespace ws

#endif // WS_COMMON_RNG_H_
