/**
 * @file
 * Minimal JSON value tree with a writer and a recursive-descent parser.
 *
 * The benchmark harnesses emit machine-readable result files
 * (bench_results/NAME.json) alongside the paper-style text tables, and the
 * sweep driver merges its wall-clock/cache statistics into a shared
 * BENCH_sweep.json — which requires read-modify-write, hence the
 * parser. The persistent simulation store (driver/disk_cache) replays
 * records through this parser and demands exact fidelity: numbers are
 * doubles written in the shortest form that re-parses bit-equal, and
 * \uXXXX escapes are validated (all four hex digits, surrogates must
 * pair) and decoded to UTF-8. This is deliberately not a
 * general-purpose JSON library: objects preserve insertion order so
 * diffs stay stable across runs, and that is about all it promises.
 */

#ifndef WS_COMMON_JSON_H_
#define WS_COMMON_JSON_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace ws {

class Json
{
  public:
    enum class Type : std::uint8_t
    {
        kNull,
        kBool,
        kNumber,
        kString,
        kArray,
        kObject,
    };

    Json() = default;
    Json(bool b) : type_(Type::kBool), bool_(b) {}
    Json(double d) : type_(Type::kNumber), num_(d) {}
    Json(int i) : type_(Type::kNumber), num_(i) {}
    Json(unsigned u) : type_(Type::kNumber), num_(u) {}
    Json(std::uint64_t u)
        : type_(Type::kNumber), num_(static_cast<double>(u))
    {}
    Json(std::int64_t i)
        : type_(Type::kNumber), num_(static_cast<double>(i))
    {}
    Json(const char *s) : type_(Type::kString), str_(s) {}
    Json(std::string s) : type_(Type::kString), str_(std::move(s)) {}

    static Json object() { Json j; j.type_ = Type::kObject; return j; }
    static Json array() { Json j; j.type_ = Type::kArray; return j; }

    Type type() const { return type_; }
    bool isNull() const { return type_ == Type::kNull; }
    bool isObject() const { return type_ == Type::kObject; }
    bool isArray() const { return type_ == Type::kArray; }

    bool asBool() const { return bool_; }
    double asNumber() const { return num_; }
    const std::string &asString() const { return str_; }

    /** Object field access; creates the field (null) on a non-const
     *  object, converting a null value into an object first. fatal()
     *  on any other type — fields of a number/string/array would be
     *  silently dropped by dump(). */
    Json &operator[](const std::string &key);

    /** Object field lookup; returns nullptr when absent. */
    const Json *find(const std::string &key) const;

    /** Array append. */
    void push(Json value);

    std::size_t size() const;
    const std::vector<Json> &items() const { return items_; }
    const std::vector<std::pair<std::string, Json>> &
    fields() const
    {
        return fields_;
    }

    /** Render with 2-space indentation (stable field order). */
    std::string dump(int indent = 0) const;

    /**
     * Parse @p text; returns a null value and sets @p ok to false on any
     * syntax error (callers treat a corrupt file as absent).
     */
    static Json parse(const std::string &text, bool *ok = nullptr);

  private:
    void dumpTo(std::string &out, int indent, int depth) const;

    Type type_ = Type::kNull;
    bool bool_ = false;
    double num_ = 0.0;
    std::string str_;
    std::vector<Json> items_;                           ///< kArray.
    std::vector<std::pair<std::string, Json>> fields_;  ///< kObject.
    std::map<std::string, std::size_t> index_;          ///< kObject.
};

} // namespace ws

#endif // WS_COMMON_JSON_H_
