/**
 * @file
 * Lightweight statistics collection.
 *
 * Components keep plain counters in their own structs for speed and
 * export them into a StatReport (an ordered name→value list) when a run
 * finishes. StatReport supports hierarchical names ("cluster0.l1.hits"),
 * merging across components, and pretty-printing, which is all the
 * benchmark harnesses need.
 */

#ifndef WS_COMMON_STATS_H_
#define WS_COMMON_STATS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace ws {

/** Simple event counter. */
using Counter = std::uint64_t;

/**
 * Fixed-bucket histogram for distributions such as message hop counts or
 * matching-table occupancy. Values past the last bucket are clamped into
 * an overflow bucket.
 */
class Histogram
{
  public:
    /** @param num_buckets bucket count, @param bucket_width value span
     *  per bucket. */
    explicit Histogram(std::size_t num_buckets = 16,
                       std::uint64_t bucket_width = 1)
        : buckets_(num_buckets + 1, 0), width_(bucket_width)
    {}

    /** Record one sample. */
    void
    sample(std::uint64_t value)
    {
        std::size_t idx = static_cast<std::size_t>(value / width_);
        if (idx >= buckets_.size() - 1)
            idx = buckets_.size() - 1;
        ++buckets_[idx];
        sum_ += value;
        ++count_;
        if (value > max_)
            max_ = value;
    }

    Counter count() const { return count_; }
    Counter bucket(std::size_t i) const { return buckets_.at(i); }
    std::size_t numBuckets() const { return buckets_.size(); }
    std::uint64_t max() const { return max_; }

    /** Arithmetic mean of all samples (0 when empty). */
    double
    mean() const
    {
        return count_ == 0 ? 0.0
                           : static_cast<double>(sum_) /
                                 static_cast<double>(count_);
    }

    /** Reset to the empty state. */
    void
    reset()
    {
        for (auto &b : buckets_)
            b = 0;
        sum_ = 0;
        count_ = 0;
        max_ = 0;
    }

  private:
    std::vector<Counter> buckets_;
    std::uint64_t width_;
    std::uint64_t sum_ = 0;
    Counter count_ = 0;
    std::uint64_t max_ = 0;
};

/**
 * Ordered collection of named statistics produced by one simulation run.
 * Names are dot-separated paths; record order is insertion order so that
 * reports read top-down through the hierarchy.
 */
class StatReport
{
  public:
    /** Add (or overwrite) a scalar statistic. */
    void add(const std::string &name, double value);

    /** Add a counter statistic. */
    void add(const std::string &name, Counter value);

    /** Look up a value; fatal() if the name is absent. */
    double get(const std::string &name) const;

    /** True when the name is present. */
    bool has(const std::string &name) const;

    /** Sum of all stats whose name starts with the given prefix. */
    double sumPrefix(const std::string &prefix) const;

    /** Merge another report under an optional name prefix. */
    void merge(const StatReport &other, const std::string &prefix = "");

    /** Render as aligned "name value" lines. */
    std::string toString() const;

    const std::vector<std::pair<std::string, double>> &
    entries() const
    {
        return entries_;
    }

  private:
    std::vector<std::pair<std::string, double>> entries_;
    std::map<std::string, std::size_t> index_;
};

} // namespace ws

#endif // WS_COMMON_STATS_H_
