/**
 * @file
 * Thread-local runtime-check hook for layers below src/check.
 *
 * TimedQueue (src/network) sits at the bottom of the layering and
 * cannot see the RuntimeChecker, so its pop() contract ("ready(now)
 * must hold") is checked through this indirection: the Processor
 * installs its checker here for the duration of each tick (per
 * simulation thread — sweeps run simulations concurrently), and the
 * queue reports through whatever is installed. With no checker the
 * cost is one thread-local load and branch per pop.
 */

#ifndef WS_COMMON_RUNTIME_HOOK_H_
#define WS_COMMON_RUNTIME_HOOK_H_

#include "common/types.h"

namespace ws {

/** Receiver side of the hook (implemented by RuntimeChecker). */
class QueueCheckHook
{
  public:
    virtual ~QueueCheckHook() = default;

    /** A timed queue popped an item stamped @p ready at cycle @p now. */
    virtual void onQueuePop(Cycle ready, Cycle now) = 0;
};

/** The per-thread installed hook (null when checking is off). */
extern thread_local QueueCheckHook *tlsQueueCheckHook;

/** RAII install/restore of the thread's hook. */
class ScopedQueueCheckHook
{
  public:
    explicit ScopedQueueCheckHook(QueueCheckHook *hook)
        : saved_(tlsQueueCheckHook)
    {
        tlsQueueCheckHook = hook;
    }

    ~ScopedQueueCheckHook() { tlsQueueCheckHook = saved_; }

    ScopedQueueCheckHook(const ScopedQueueCheckHook &) = delete;
    ScopedQueueCheckHook &operator=(const ScopedQueueCheckHook &) = delete;

  private:
    QueueCheckHook *saved_;
};

} // namespace ws

#endif // WS_COMMON_RUNTIME_HOOK_H_
