#include "area/tuning.h"

#include <algorithm>

#include "core/simulator.h"

namespace ws {

double
measureAipc(const DataflowGraph &graph, const ProcessorConfig &cfg,
            Cycle max_cycles)
{
    SimOptions opts;
    opts.maxCycles = max_cycles;
    return runSimulation(graph, cfg, opts).aipc;
}

TuningResult
tuneMatchingTable(const DataflowGraph &graph, const ProcessorConfig &base,
                  const TuningOptions &opts)
{
    TuningResult result;

    // Step 1: k_opt on an effectively infinite matching table.
    ProcessorConfig cfg = base;
    cfg.relaxLimits = true;
    cfg.pe.matchingEntries = 8192;
    cfg.pe.matchingWays = 8;
    double best = 0.0;
    for (unsigned k = 1; k <= opts.maxK; ++k) {
        cfg.pe.k = k;
        const double aipc = measureAipc(graph, cfg, opts.maxCycles);
        if (k == 1 || aipc > best * (1.0 + opts.koptThreshold)) {
            best = std::max(best, aipc);
            result.kopt = k;
        } else {
            break;  // Saturated: performance no longer improves.
        }
    }

    // Step 2: u_opt at V = 256, M = V*k_opt/u.
    cfg = base;
    cfg.relaxLimits = true;
    cfg.pe.instStoreEntries = 256;
    cfg.pe.k = result.kopt;
    double base_aipc = 0.0;
    for (unsigned u = 1; u <= opts.maxU; u *= 2) {
        unsigned m = static_cast<unsigned>(
            (256ull * result.kopt) / u);
        m = std::max(m, 2u * cfg.pe.matchingWays);
        if (m % cfg.pe.matchingWays != 0)
            m += cfg.pe.matchingWays - (m % cfg.pe.matchingWays);
        cfg.pe.matchingEntries = m;
        const double aipc = measureAipc(graph, cfg, opts.maxCycles);
        if (u == 1) {
            base_aipc = aipc;
            result.uopt = 1;
            continue;
        }
        if (aipc >= base_aipc * (1.0 - opts.uoptDrop))
            result.uopt = u;
        else
            break;  // Performance started to decrease significantly.
    }

    result.virtRatio =
        static_cast<double>(result.kopt) / result.uopt;
    return result;
}

} // namespace ws
