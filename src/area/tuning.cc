#include "area/tuning.h"

#include <algorithm>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "core/simulator.h"

namespace ws {

double
measureAipc(const DataflowGraph &graph, const ProcessorConfig &cfg,
            Cycle max_cycles)
{
    SimOptions opts;
    opts.maxCycles = max_cycles;
    return runSimulation(graph, cfg, opts).aipc;
}

namespace {

std::uint64_t
fallbackFingerprint(const DataflowGraph &graph)
{
    std::uint64_t h = 0x74756e696e676670ULL;  // "tuningfp" salt.
    for (char c : graph.name())
        h = hashCombine(h, static_cast<std::uint64_t>(c));
    h = hashCombine(h, graph.size());
    h = hashCombine(h, graph.numThreads());
    return h;
}

/** Batch-run @p configs against one shared graph, returning AIPCs in
 *  submission order. */
std::vector<double>
batchAipc(SweepEngine &engine, const DataflowGraph &graph,
          std::uint64_t graph_fp, const std::vector<ProcessorConfig> &cfgs,
          Cycle max_cycles)
{
    // Non-owning alias: the batch completes before this call returns,
    // so the caller's graph outlives every job.
    std::shared_ptr<const DataflowGraph> shared(
        std::shared_ptr<const DataflowGraph>(), &graph);
    std::vector<SimJob> jobs;
    jobs.reserve(cfgs.size());
    for (const ProcessorConfig &cfg : cfgs) {
        SimJob job;
        job.graph = shared;
        job.cfg = cfg;
        job.maxCycles = max_cycles;
        job.graphFp = graph_fp;
        jobs.push_back(std::move(job));
    }
    std::vector<double> aipcs;
    aipcs.reserve(cfgs.size());
    for (const SimResult &r : engine.run(jobs))
        aipcs.push_back(r.aipc);
    return aipcs;
}

} // namespace

TuningResult
tuneMatchingTable(const DataflowGraph &graph, const ProcessorConfig &base,
                  const TuningOptions &opts, SweepEngine *engine)
{
    TuningResult result;

    std::unique_ptr<SweepEngine> local;
    if (engine == nullptr) {
        SweepEngine::Options eopts;
        eopts.jobs = 1;
        eopts.progress = false;
        local = std::make_unique<SweepEngine>(eopts);
        engine = local.get();
    }
    const std::uint64_t graph_fp = opts.graphFingerprint != 0
                                       ? opts.graphFingerprint
                                       : fallbackFingerprint(graph);

    // Step 1: k_opt on an effectively infinite matching table. All
    // candidate k run as one batch; the saturation scan below then
    // stops exactly where the sequential sweep would have.
    ProcessorConfig cfg = base;
    cfg.relaxLimits = true;
    cfg.pe.matchingEntries = 8192;
    cfg.pe.matchingWays = 8;
    std::vector<ProcessorConfig> k_cfgs;
    for (unsigned k = 1; k <= opts.maxK; ++k) {
        cfg.pe.k = k;
        k_cfgs.push_back(cfg);
    }
    const std::vector<double> k_aipc =
        batchAipc(*engine, graph, graph_fp, k_cfgs, opts.maxCycles);
    double best = 0.0;
    for (unsigned k = 1; k <= opts.maxK; ++k) {
        const double aipc = k_aipc[k - 1];
        if (k == 1 || aipc > best * (1.0 + opts.koptThreshold)) {
            best = std::max(best, aipc);
            result.kopt = k;
        } else {
            break;  // Saturated: performance no longer improves.
        }
    }

    // Step 2: u_opt at V = 256, M = V*k_opt/u — same batch-then-scan.
    cfg = base;
    cfg.relaxLimits = true;
    cfg.pe.instStoreEntries = 256;
    cfg.pe.k = result.kopt;
    std::vector<ProcessorConfig> u_cfgs;
    std::vector<unsigned> u_values;
    for (unsigned u = 1; u <= opts.maxU; u *= 2) {
        unsigned m = static_cast<unsigned>(
            (256ull * result.kopt) / u);
        m = std::max(m, 2u * cfg.pe.matchingWays);
        if (m % cfg.pe.matchingWays != 0)
            m += cfg.pe.matchingWays - (m % cfg.pe.matchingWays);
        cfg.pe.matchingEntries = m;
        u_cfgs.push_back(cfg);
        u_values.push_back(u);
    }
    const std::vector<double> u_aipc =
        batchAipc(*engine, graph, graph_fp, u_cfgs, opts.maxCycles);
    double base_aipc = 0.0;
    for (std::size_t i = 0; i < u_values.size(); ++i) {
        const double aipc = u_aipc[i];
        if (u_values[i] == 1) {
            base_aipc = aipc;
            result.uopt = 1;
            continue;
        }
        if (aipc >= base_aipc * (1.0 - opts.uoptDrop))
            result.uopt = u_values[i];
        else
            break;  // Performance started to decrease significantly.
    }

    result.virtRatio =
        static_cast<double>(result.kopt) / result.uopt;
    return result;
}

} // namespace ws
