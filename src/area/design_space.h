/**
 * @file
 * Design-space enumeration and pruning (paper §4.2).
 *
 * The seven Table-3 parameters span tens of thousands of raw
 * configurations. The paper prunes them with structural rules (die-size
 * bound, "no multi-domain clusters with undersized domains", "no
 * multi-cluster machines with undersized clusters"), fixes the
 * virtualization ratio M/V at 1 (its most conservative Table-4 value),
 * and requires at least 4K total instruction capacity — yielding the 41
 * designs Figure 6 evaluates.
 */

#ifndef WS_AREA_DESIGN_SPACE_H_
#define WS_AREA_DESIGN_SPACE_H_

#include <vector>

#include "area/area_model.h"
#include "core/config.h"

namespace ws {

/** Knobs for the §4.2 pruning pipeline. */
struct DesignSpaceRules
{
    double maxAreaMm2 = 400.0;
    // Power-of-two virtualization ratio M/V. The paper explores 1/8..8
    // and settles on 1; ratios below 1 cap M at its 128-entry synthesis
    // limit.
    double virtRatio = 1.0;
    std::uint64_t minCapacity = 4096;
};

/** Every raw combination of the Table-3 parameter ranges. */
std::vector<DesignPoint> enumerateRawDesigns();

/** Structural pruning only (die bound + balance rules): "344 designs". */
std::vector<DesignPoint> pruneStructural(
    const std::vector<DesignPoint> &raw, const DesignSpaceRules &rules);

/**
 * The full pipeline: structural pruning + fixed virtualization ratio +
 * minimum capacity. With the default rules this is the paper's 41-design
 * evaluation set.
 */
std::vector<DesignPoint> enumerateCandidates(
    const DesignSpaceRules &rules = DesignSpaceRules{});

/** Map a design point onto a runnable simulator configuration. */
ProcessorConfig toProcessorConfig(const DesignPoint &d);

} // namespace ws

#endif // WS_AREA_DESIGN_SPACE_H_
