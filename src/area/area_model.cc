#include "area/area_model.h"

#include <cstdio>

namespace ws {

std::string
DesignPoint::describe() const
{
    char buf[96];
    std::snprintf(buf, sizeof(buf), "C%u D%u P%u V%u M%u L1:%uK L2:%uM",
                  clusters, domainsPerCluster, pesPerDomain, virt,
                  matching, l1KB, l2MB);
    return buf;
}

double
AreaModel::peArea(unsigned matching, unsigned virt)
{
    return matching * kMatchPerEntry + virt * kInstPerEntry + kPeOther;
}

double
AreaModel::domainArea(unsigned pes, unsigned matching, unsigned virt)
{
    return 2.0 * kPseudoPe + pes * peArea(matching, virt);
}

double
AreaModel::clusterArea(const DesignPoint &d)
{
    return d.domainsPerCluster *
               domainArea(d.pesPerDomain, d.matching, d.virt) +
           kStoreBuffer + d.l1KB * kL1PerKB + kNetSwitch;
}

double
AreaModel::totalArea(const DesignPoint &d)
{
    return (d.clusters * clusterArea(d)) / kUtilization +
           d.l2MB * kL2PerMB;
}

} // namespace ws
