#include "area/area_model.h"

#include <sstream>

namespace ws {

std::string
DesignPoint::describe() const
{
    std::ostringstream out;
    out << 'C' << clusters << " D" << domainsPerCluster << " P"
        << pesPerDomain << " V" << virt << " M" << matching << " L1:"
        << l1KB << "K L2:" << l2MB << 'M';
    return out.str();
}

double
AreaModel::peArea(unsigned matching, unsigned virt)
{
    return matching * kMatchPerEntry + virt * kInstPerEntry + kPeOther;
}

double
AreaModel::domainArea(unsigned pes, unsigned matching, unsigned virt)
{
    return 2.0 * kPseudoPe + pes * peArea(matching, virt);
}

double
AreaModel::clusterArea(const DesignPoint &d)
{
    return d.domainsPerCluster *
               domainArea(d.pesPerDomain, d.matching, d.virt) +
           kStoreBuffer + d.l1KB * kL1PerKB + kNetSwitch;
}

double
AreaModel::totalArea(const DesignPoint &d)
{
    return (d.clusters * clusterArea(d)) / kUtilization +
           d.l2MB * kL2PerMB;
}

} // namespace ws
