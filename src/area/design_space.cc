#include "area/design_space.h"

#include <cmath>

#include "common/log.h"

namespace ws {

namespace {

constexpr std::uint16_t kClusterRange[] = {1, 2, 4, 8, 16, 32, 64};
constexpr std::uint16_t kDomainRange[] = {1, 2, 4};
constexpr std::uint16_t kPeRange[] = {2, 4, 8};
constexpr std::uint16_t kVirtRange[] = {8, 16, 32, 64, 128, 256};
constexpr std::uint16_t kMatchRange[] = {16, 32, 64, 128};
constexpr std::uint16_t kL1Range[] = {8, 16, 32};
constexpr std::uint16_t kL2Range[] = {0, 1, 2, 4, 8};

} // namespace

std::vector<DesignPoint>
enumerateRawDesigns()
{
    std::vector<DesignPoint> designs;
    for (auto c : kClusterRange) {
        for (auto d : kDomainRange) {
            for (auto p : kPeRange) {
                for (auto v : kVirtRange) {
                    for (auto m : kMatchRange) {
                        for (auto l1 : kL1Range) {
                            for (auto l2 : kL2Range) {
                                designs.push_back(DesignPoint{
                                    c, d, p, v, m, l1, l2});
                            }
                        }
                    }
                }
            }
        }
    }
    return designs;
}

std::vector<DesignPoint>
pruneStructural(const std::vector<DesignPoint> &raw,
                const DesignSpaceRules &rules)
{
    std::vector<DesignPoint> kept;
    for (const DesignPoint &d : raw) {
        // Die-size bound for aggressive-but-feasible 90nm designs.
        if (AreaModel::totalArea(d) > rules.maxAreaMm2)
            continue;
        // An under-populated domain should be merged into its siblings:
        // it cannot shorten the cycle (EXECUTE sets it) but lengthens
        // communication.
        if (d.pesPerDomain < 8 && d.domainsPerCluster > 1)
            continue;
        // Likewise an under-populated cluster.
        if (d.domainsPerCluster < 4 && d.clusters > 1)
            continue;
        // The grid network wants square machines; Table 5's multi-
        // cluster designs are all 1x1, 2x2, or 4x4 grids.
        if (d.clusters != 1 && d.clusters != 4 && d.clusters != 16 &&
            d.clusters != 64) {
            continue;
        }
        // Balanced cache: at most 4 MB of L2 per 4K instructions of
        // execution capacity ("a few more rules like them").
        if (d.l2MB > 4 * (d.instCapacity() / 4096))
            continue;
        kept.push_back(d);
    }
    return kept;
}

std::vector<DesignPoint>
enumerateCandidates(const DesignSpaceRules &rules)
{
    std::vector<DesignPoint> kept;
    for (const DesignPoint &d : pruneStructural(enumerateRawDesigns(),
                                                rules)) {
        const double ratio = static_cast<double>(d.matching) / d.virt;
        if (std::abs(ratio - rules.virtRatio) > 1e-9)
            continue;
        if (d.instCapacity() < rules.minCapacity)
            continue;
        kept.push_back(d);
    }
    return kept;
}

ProcessorConfig
toProcessorConfig(const DesignPoint &d)
{
    ProcessorConfig cfg = ProcessorConfig::baseline();
    cfg.clusters = d.clusters;
    cfg.domainsPerCluster = d.domainsPerCluster;
    cfg.pesPerDomain = d.pesPerDomain;
    cfg.pe.instStoreEntries = d.virt;
    cfg.pe.matchingEntries = d.matching;
    cfg.memory.l1Bytes = static_cast<std::size_t>(d.l1KB) * 1024;
    cfg.memory.l2Bytes = static_cast<std::size_t>(d.l2MB) * 1024 * 1024;
    return cfg;
}

} // namespace ws
