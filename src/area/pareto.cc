#include "area/pareto.h"

#include <algorithm>

namespace ws {

bool
dominates(const ParetoPoint &a, const ParetoPoint &b)
{
    const bool no_worse = a.area <= b.area && a.perf >= b.perf;
    const bool better = a.area < b.area || a.perf > b.perf;
    return no_worse && better;
}

std::vector<std::size_t>
paretoFront(const std::vector<ParetoPoint> &points)
{
    std::vector<std::size_t> front;
    for (std::size_t i = 0; i < points.size(); ++i) {
        bool dominated = false;
        for (std::size_t j = 0; j < points.size() && !dominated; ++j) {
            if (j != i && dominates(points[j], points[i]))
                dominated = true;
        }
        if (!dominated)
            front.push_back(i);
    }
    std::sort(front.begin(), front.end(),
              [&](std::size_t a, std::size_t b) {
                  return points[a].area < points[b].area;
              });
    return front;
}

} // namespace ws
