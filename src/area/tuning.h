/**
 * @file
 * Matching-table tuning methodology (paper §4.2, Table 4).
 *
 * For each application the paper derives:
 *  - k_opt: the smallest k-loop bound at which performance saturates,
 *    measured on a processor with an effectively infinite matching
 *    table;
 *  - u_opt: the largest matching-table over-subscription factor u (with
 *    V fixed at 256 and M = V*k_opt/u) that does not yet cost
 *    significant performance;
 *  - the virtualization ratio k_opt/u_opt = M/V, whose per-suite maximum
 *    (1) the design space fixes.
 */

#ifndef WS_AREA_TUNING_H_
#define WS_AREA_TUNING_H_

#include "common/types.h"
#include "core/config.h"
#include "driver/sweep_engine.h"
#include "isa/graph.h"

namespace ws {

struct TuningOptions
{
    Cycle maxCycles = 2'000'000;
    double koptThreshold = 0.03;  ///< Min relative gain to keep raising k.
    double uoptDrop = 0.08;       ///< Tolerated loss vs u=1 performance.
    unsigned maxK = 8;
    unsigned maxU = 64;

    /**
     * Program identity for SimCache memoization (e.g. a kernel
     * fingerprint); 0 derives a fallback from the graph's name, size,
     * and thread count — sufficient within one process, where equal
     * names mean the same built graph.
     */
    std::uint64_t graphFingerprint = 0;
};

struct TuningResult
{
    unsigned kopt = 1;
    unsigned uopt = 1;
    double virtRatio = 1.0;   ///< kopt / uopt.
};

/** AIPC of @p graph on @p cfg (helper shared by the sweeps). */
double measureAipc(const DataflowGraph &graph, const ProcessorConfig &cfg,
                   Cycle max_cycles);

/**
 * The full Table-4 procedure for one application.
 *
 * Both sweeps (k then u) submit every candidate as one batch to
 * @p engine, then apply the paper's early-stopping scan to the ordered
 * results — identical outcomes to the sequential loops, but the
 * candidate simulations run concurrently and memoize (the u-sweep's
 * u=1 baseline is a guaranteed re-visit). Passing nullptr runs on a
 * private single-threaded engine.
 */
TuningResult tuneMatchingTable(const DataflowGraph &graph,
                               const ProcessorConfig &base,
                               const TuningOptions &opts = TuningOptions{},
                               SweepEngine *engine = nullptr);

} // namespace ws

#endif // WS_AREA_TUNING_H_
