/**
 * @file
 * Matching-table tuning methodology (paper §4.2, Table 4).
 *
 * For each application the paper derives:
 *  - k_opt: the smallest k-loop bound at which performance saturates,
 *    measured on a processor with an effectively infinite matching
 *    table;
 *  - u_opt: the largest matching-table over-subscription factor u (with
 *    V fixed at 256 and M = V*k_opt/u) that does not yet cost
 *    significant performance;
 *  - the virtualization ratio k_opt/u_opt = M/V, whose per-suite maximum
 *    (1) the design space fixes.
 */

#ifndef WS_AREA_TUNING_H_
#define WS_AREA_TUNING_H_

#include "common/types.h"
#include "core/config.h"
#include "isa/graph.h"

namespace ws {

struct TuningOptions
{
    Cycle maxCycles = 2'000'000;
    double koptThreshold = 0.03;  ///< Min relative gain to keep raising k.
    double uoptDrop = 0.08;       ///< Tolerated loss vs u=1 performance.
    unsigned maxK = 8;
    unsigned maxU = 64;
};

struct TuningResult
{
    unsigned kopt = 1;
    unsigned uopt = 1;
    double virtRatio = 1.0;   ///< kopt / uopt.
};

/** AIPC of @p graph on @p cfg (helper shared by the sweeps). */
double measureAipc(const DataflowGraph &graph, const ProcessorConfig &cfg,
                   Cycle max_cycles);

/** The full Table-4 procedure for one application. */
TuningResult tuneMatchingTable(const DataflowGraph &graph,
                               const ProcessorConfig &base,
                               const TuningOptions &opts = TuningOptions{});

} // namespace ws

#endif // WS_AREA_TUNING_H_
