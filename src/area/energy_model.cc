#include "area/energy_model.h"

#include <cmath>

namespace ws {

double
EnergyModel::matchingAccess(unsigned entries)
{
    return kSramBase + kSramPerRootEntry * std::sqrt(
                           static_cast<double>(entries));
}

double
EnergyModel::istoreAccess(unsigned entries)
{
    return kSramBase + kSramPerRootEntry * std::sqrt(
                           static_cast<double>(entries));
}

EnergyBreakdown
EnergyModel::estimate(const StatReport &r, const DesignPoint &design)
{
    EnergyBreakdown out;
    auto add = [&](const char *name, double pj) {
        out.items.push_back(EnergyItem{name, pj});
        out.totalPj += pj;
    };

    const double executed = r.get("pe.executed");

    // Execution: one ALU-class event per dispatched instruction. (The
    // FPU premium would need a dynamic FP-op counter; the integer
    // figure keeps the model conservative and design-point-neutral.)
    add("execute.alu", executed * kAluOp);

    // Matching table: every insert is a banked SRAM write + tracker
    // update; overflow misses additionally pay an L1-class access into
    // the in-memory table.
    add("matching.write",
        r.get("match.inserts") * matchingAccess(design.matching));
    add("matching.overflow", r.get("match.misses") * kL1PerAccess);

    // Instruction store: one decoded-instruction read per insert, plus
    // refills on misses (L1-class).
    add("istore.read",
        r.get("istore.hits") * istoreAccess(design.virt));
    add("istore.refill", r.get("istore.misses") * kL1PerAccess);

    // Store buffer processing.
    add("storebuffer", r.get("sb.requests") * kSbOp);

    // Data memory hierarchy.
    add("l1", (r.get("l1.hits") + r.get("l1.misses")) * kL1PerAccess);
    add("l2", (r.get("home.l2_hits") + r.get("home.l2_misses")) *
                  kL2PerAccess);
    add("dram", r.get("home.l2_misses") * kDramPerAccess);

    // Interconnect, by the highest level each message traversed.
    auto level = [&](const char *name) {
        return r.get(std::string("traffic.") + name + ".operand") +
               r.get(std::string("traffic.") + name + ".memory");
    };
    add("net.pod", level("intra_pod") * kPodHop);
    add("net.domain", level("intra_domain") * kDomainHop);
    add("net.cluster", level("intra_cluster") * kClusterHop);
    const double grid_msgs = level("inter_cluster");
    const double mean_hops =
        r.has("traffic.mean_hops") ? r.get("traffic.mean_hops") : 0.0;
    add("net.grid", grid_msgs * (kClusterHop +
                                 kGridHop * std::max(1.0, mean_hops)));

    // Leakage: proportional to die area and run length.
    const double cycles = r.get("sim.cycles");
    add("leakage",
        cycles * AreaModel::totalArea(design) * kLeakagePerMm2PerCycle);

    const double useful = r.get("sim.useful_executed");
    out.epiPj = useful > 0 ? out.totalPj / useful : 0.0;
    const double seconds = cycles * kClockSeconds;
    out.watts = seconds > 0 ? out.totalPj * 1e-12 / seconds : 0.0;
    out.edp = out.totalPj * 1e-12 * seconds;
    return out;
}

} // namespace ws
