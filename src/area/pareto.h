/**
 * @file
 * Pareto-front extraction over (area, performance) points (Figure 6).
 */

#ifndef WS_AREA_PARETO_H_
#define WS_AREA_PARETO_H_

#include <cstddef>
#include <vector>

namespace ws {

/** One evaluated design: its silicon cost and its performance. */
struct ParetoPoint
{
    double area = 0.0;   ///< mm²
    double perf = 0.0;   ///< AIPC
    std::size_t tag = 0; ///< Caller-defined identity (design index).
};

/**
 * Indices (into @p points) of the Pareto-optimal designs: no other
 * design is at most as large *and* strictly faster, or strictly smaller
 * and at least as fast. Returned sorted by area ascending.
 */
std::vector<std::size_t> paretoFront(const std::vector<ParetoPoint> &points);

/** True when a dominates b (smaller-or-equal area, faster-or-equal). */
bool dominates(const ParetoPoint &a, const ParetoPoint &b);

} // namespace ws

#endif // WS_AREA_PARETO_H_
