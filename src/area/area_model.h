/**
 * @file
 * The WaveScalar processor area model (paper Table 3).
 *
 * The paper distills its RTL synthesis results (90nm TSMC, 20 FO4) into
 * per-component area constants and closed-form composition rules; the
 * entire Section 4.2 design-space study consumes only this model. The
 * constants below are the published Table-3 values (mm² in 90nm).
 */

#ifndef WS_AREA_AREA_MODEL_H_
#define WS_AREA_AREA_MODEL_H_

#include <cstdint>
#include <string>

namespace ws {

/**
 * One candidate WaveScalar processor configuration, in the paper's
 * seven-parameter design space (Table 3, top half).
 */
struct DesignPoint
{
    std::uint16_t clusters = 1;        ///< C: 1..64
    std::uint16_t domainsPerCluster = 4;  ///< D: 1..4
    std::uint16_t pesPerDomain = 8;    ///< P: 2..8
    std::uint16_t virt = 128;          ///< V: 8..256 (instructions/PE)
    std::uint16_t matching = 128;      ///< M: 16..128 (matching entries)
    std::uint16_t l1KB = 32;           ///< L1: 8..32 KB per cluster
    std::uint16_t l2MB = 0;            ///< L2: 0..32 MB total

    /** Total instruction capacity (e.g. 4K for the baseline). */
    std::uint64_t
    instCapacity() const
    {
        return static_cast<std::uint64_t>(clusters) * domainsPerCluster *
               pesPerDomain * virt;
    }

    std::uint32_t
    totalPes() const
    {
        return static_cast<std::uint32_t>(clusters) * domainsPerCluster *
               pesPerDomain;
    }

    /** "C4 D4 P8 V128 M128 L1:32K L2:1M" style summary. */
    std::string describe() const;

    bool operator==(const DesignPoint &) const = default;
};

/**
 * Table-3 area constants and composition rules.
 *
 * Calibration note: Table 3 prints M_area and V_area rounded to one
 * significant digit (0.004 / 0.002 mm² per entry) and SB_area as
 * 2.464 mm², but the paper's own Table-5 area column is reproduced only
 * by the unrounded Table-2 RTL figures — 0.58 mm² / 128 matching
 * entries, 0.31 mm² / 128 instruction slots, and a 2.62 mm² store
 * buffer. With those constants this model matches every published
 * Table-5 area within ~1 mm² (config 1: 39, config 3: 48, config 17:
 * 387, config 18: 399); with the rounded constants it undershoots by
 * ~10%. We therefore use the Table-2-derived values and keep the
 * rounded ones available for reference.
 */
class AreaModel
{
  public:
    // Calibrated constants (from Table 2), mm² in 90nm.
    static constexpr double kMatchPerEntry = 0.58 / 128;   // M_area
    static constexpr double kInstPerEntry = 0.31 / 128;    // V_area
    static constexpr double kPeOther = 0.05;          // e_area
    static constexpr double kPseudoPe = 0.1236;       // PPE_area
    static constexpr double kStoreBuffer = 2.62;      // SB_area
    static constexpr double kL1PerKB = 0.363;         // L1_area
    static constexpr double kNetSwitch = 0.349;       // N_area
    static constexpr double kL2PerMB = 11.78;         // L2_area
    static constexpr double kUtilization = 0.94;      // U

    // Table 3's rounded per-entry figures, for reference.
    static constexpr double kMatchPerEntryT3 = 0.004;
    static constexpr double kInstPerEntryT3 = 0.002;
    static constexpr double kStoreBufferT3 = 2.464;

    /** PE_area = M*M_area + V*V_area + e_area. */
    static double peArea(unsigned matching, unsigned virt);

    /** D_area = 2*PPE_area + P*PE_area. */
    static double domainArea(unsigned pes, unsigned matching,
                             unsigned virt);

    /** C_area = D*D_area + SB_area + L1*L1_area + N_area. */
    static double clusterArea(const DesignPoint &d);

    /** WC_area = (C*C_area)/U + L2*L2_area. */
    static double totalArea(const DesignPoint &d);
};

/**
 * The published Table-2 cluster budget for the baseline configuration
 * (4 domains x 8 PEs, V=M=128, 32 KB L1), used by the Table-2 bench to
 * print the paper's breakdown next to the model's derivation.
 */
struct Table2Budget
{
    // Per-PE areas by pipeline stage (mm²).
    static constexpr double kInput = 0.01;
    static constexpr double kMatch = 0.58;
    static constexpr double kDispatch = 0.01;
    static constexpr double kExecute = 0.02;
    static constexpr double kOutput = 0.02;
    static constexpr double kInstStore = 0.31;
    static constexpr double kPeTotal = 0.94;
    // Domain-level (mm²).
    static constexpr double kMemPe = 0.13;
    static constexpr double kNetPe = 0.13;
    static constexpr double kFpu = 0.53;
    static constexpr double kDomainTotal = 8.33;
    // Cluster-level (mm²).
    static constexpr double kSwitch = 0.37;
    static constexpr double kStoreBuffer = 2.62;
    static constexpr double kDataCache = 6.18;
    static constexpr double kClusterTotal = 42.50;
};

} // namespace ws

#endif // WS_AREA_AREA_MODEL_H_
