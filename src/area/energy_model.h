/**
 * @file
 * Activity-based energy model — an *extension* beyond the paper.
 *
 * The paper's design-space study optimizes area × performance and notes
 * that the tiled organization "would lend itself easily to multiple
 * voltage and frequency domains in the future"; this module supplies the
 * energy side of that future work. Every dynamic event the simulator
 * counts (instruction executions, matching-table writes and overflow
 * accesses, instruction-store refills, cache and DRAM accesses,
 * interconnect traversals by hierarchy level) is charged an energy cost.
 * SRAM access energies scale with the square root of the structure's
 * capacity (the standard wordline/bitline scaling argument), so the
 * same design-space knobs that move area also move energy.
 *
 * The absolute constants are representative 90 nm values (pJ), not
 * derived from the paper; the model's purpose is *relative* comparison
 * across design points (energy/instruction, power, energy-delay
 * product), which is how bench_ext_energy uses it.
 */

#ifndef WS_AREA_ENERGY_MODEL_H_
#define WS_AREA_ENERGY_MODEL_H_

#include <string>
#include <vector>

#include "area/area_model.h"
#include "common/stats.h"

namespace ws {

/** Energy accounted to one component class, in picojoules. */
struct EnergyItem
{
    std::string name;
    double picojoules = 0.0;
};

struct EnergyBreakdown
{
    std::vector<EnergyItem> items;
    double totalPj = 0.0;

    /** Energy per useful (Alpha-equivalent) instruction, pJ. */
    double epiPj = 0.0;

    /** Average power in watts at the 20 FO4 / 90 nm clock (~1.06 GHz). */
    double watts = 0.0;

    /** Energy-delay product, J·s (lower is better). */
    double edp = 0.0;
};

class EnergyModel
{
  public:
    // Per-event energies, pJ (representative 90 nm figures).
    static constexpr double kAluOp = 8.0;
    static constexpr double kFpuOp = 45.0;
    static constexpr double kSramBase = 1.5;     ///< Fixed decode cost.
    static constexpr double kSramPerRootEntry = 0.25;  ///< × sqrt(entries).
    static constexpr double kL1PerAccess = 22.0;
    static constexpr double kL2PerAccess = 110.0;
    static constexpr double kDramPerAccess = 2200.0;
    static constexpr double kPodHop = 0.6;
    static constexpr double kDomainHop = 3.2;
    static constexpr double kClusterHop = 9.5;
    static constexpr double kGridHop = 28.0;
    static constexpr double kSbOp = 6.0;
    static constexpr double kLeakagePerMm2PerCycle = 0.05;  ///< pJ/mm²/cyc.

    /** Clock period at 20 FO4 in 90 nm (20 x 47.3 ps), seconds. */
    static constexpr double kClockSeconds = 20 * 47.3e-12;

    /** Matching-table write energy for an M-entry table. */
    static double matchingAccess(unsigned entries);

    /** Instruction-store access energy for a V-entry store. */
    static double istoreAccess(unsigned entries);

    /**
     * Charge every counted event in @p report for a run on @p design.
     * @p report must come from Processor::report() (it reads the
     * sim.*, pe.*, match.*, istore.*, sb.*, l1.*, home.* and traffic.*
     * counters).
     */
    static EnergyBreakdown estimate(const StatReport &report,
                                    const DesignPoint &design);
};

} // namespace ws

#endif // WS_AREA_ENERGY_MODEL_H_
