#include "memory/store_buffer.h"

#include <algorithm>

#include "common/log.h"
#include "common/rng.h"

namespace ws {

StoreBuffer::StoreBuffer(const StoreBufferConfig &cfg, ClusterId self,
                         L1Controller *l1, MainMemory *mem)
    : cfg_(cfg), self_(self), l1_(l1), mem_(mem)
{
    if (cfg_.waveSlots == 0 || cfg_.issueWidth == 0)
        fatal("StoreBuffer: waveSlots and issueWidth must be nonzero");
    slots_.resize(cfg_.waveSlots);
    psqs_.resize(cfg_.psqCount);
}

void
StoreBuffer::push(const MemRequest &req, Cycle now)
{
    (void)now;
    ++stats_.requests;

    if (req.kind == MemOpKind::kStoreData) {
        // Data half: either a PSQ is already waiting for it, or it
        // arrived before (or without) its address half.
        for (Psq &psq : psqs_) {
            if (psq.active && !psq.dataReady && psq.waitTag == req.tag &&
                psq.waitSeq == req.seq) {
                psq.dataReady = true;
                earlyData_[dataKey(req.tag, req.seq)] = req.data;
                return;
            }
        }
        earlyData_[dataKey(req.tag, req.seq)] = req.data;
        return;
    }

    if (slotIndex_.count(req.tag.packed()) != 0) {
        slots_[slotIndex_[req.tag.packed()]].pending.emplace(req.seq, req);
        return;
    }
    const WaveNum current = nextWave(req.tag.thread);
    if (!tryAllocate(req, /*allow_evict=*/req.tag.wave == current)) {
        ++stats_.parkedRequests;
        parked_[req.tag.thread][req.tag.wave].push_back(req);
        ++parkedCount_;
    }
}

bool
StoreBuffer::evictFutureSlot()
{
    // A slot whose wave is strictly ahead of its thread's current wave
    // has never issued (only current waves issue), so it can be
    // re-parked losslessly. Prefer the farthest-ahead slot.
    int victim = -1;
    WaveNum max_ahead = 0;
    for (std::size_t i = 0; i < slots_.size(); ++i) {
        const WaveSlot &slot = slots_[i];
        if (!slot.active)
            continue;
        const WaveNum cur = nextWave(slot.tag.thread);
        if (slot.tag.wave <= cur)
            continue;
        const WaveNum ahead = slot.tag.wave - cur;
        if (victim < 0 || ahead > max_ahead) {
            victim = static_cast<int>(i);
            max_ahead = ahead;
        }
    }
    if (victim < 0)
        return false;
    WaveSlot &slot = slots_[victim];
    if (slot.lastIssued != kSeqNone)
        panic("StoreBuffer %u: future-wave slot (%u,%u) had issued ops",
              self_, slot.tag.thread, slot.tag.wave);
    auto &bucket = parked_[slot.tag.thread][slot.tag.wave];
    for (auto &[seq, op] : slot.pending) {
        bucket.push_back(op);
        ++parkedCount_;
    }
    slotIndex_.erase(slot.tag.packed());
    slot.active = false;
    slot.pending.clear();
    ++stats_.slotPreemptions;
    return true;
}

bool
StoreBuffer::tryAllocate(const MemRequest &req, bool allow_evict)
{
    const WaveNum base = nextWave(req.tag.thread);
    if (req.tag.wave < base) {
        panic("StoreBuffer %u: request for retired wave %u of thread %u "
              "(current %u)", self_, req.tag.wave, req.tag.thread, base);
    }
    if (req.tag.wave >= base + cfg_.waveLookahead)
        return false;
    for (int attempt = 0; attempt < 2; ++attempt) {
        for (std::size_t i = 0; i < slots_.size(); ++i) {
            if (!slots_[i].active) {
                WaveSlot &slot = slots_[i];
                slot.active = true;
                slot.tag = req.tag;
                slot.pending.clear();
                slot.pending.emplace(req.seq, req);
                slot.lastIssued = kSeqNone;
                // Wildcard start: a branch diamond at the head of a
                // wave makes the first sequence number ambiguous; the
                // first arrived op with prev == none starts the chain.
                slot.nextExpected = kSeqWildcard;
                slotIndex_[req.tag.packed()] = static_cast<int>(i);
                return true;
            }
        }
        // No free slot: a current wave may preempt a future-wave slot.
        if (!allow_evict || !evictFutureSlot())
            return false;
    }
    return false;
}

int
StoreBuffer::psqMatch(Addr addr) const
{
    // The 2-entry associative filter: compare against every active PSQ's
    // bound address.
    for (std::size_t i = 0; i < psqs_.size(); ++i) {
        if (psqs_[i].active && psqs_[i].addr == (addr & ~Addr{7}))
            return static_cast<int>(i);
    }
    return -1;
}

int
StoreBuffer::freePsq() const
{
    for (std::size_t i = 0; i < psqs_.size(); ++i) {
        if (!psqs_[i].active)
            return static_cast<int>(i);
    }
    return -1;
}

void
StoreBuffer::accessL1(const MemRequest &op, bool is_load, Value value,
                      Cycle now)
{
    const std::uint64_t id = nextReqId_++;
    outstanding_.emplace(id, Outstanding{is_load, op.inst, op.tag, value});
    l1_->request(id, op.addr, !is_load, now);
}

bool
StoreBuffer::issueOp(const MemRequest &op, Cycle now)
{
    switch (op.kind) {
      case MemOpKind::kMemNop:
        ++stats_.memNops;
        return true;

      case MemOpKind::kLoad: {
        const int match = psqMatch(op.addr);
        if (match >= 0) {
            Psq &psq = psqs_[match];
            if (psq.ops.size() >= cfg_.psqEntries) {
                ++stats_.psqFullStalls;
                return false;
            }
            ++stats_.psqAppends;
            psq.ops.push_back(op);
            ++stats_.loads;
            return true;
        }
        ++stats_.loads;
        accessL1(op, true, mem_->read(op.addr), now);
        return true;
      }

      case MemOpKind::kStoreAddr: {
        const int match = psqMatch(op.addr);
        if (match >= 0) {
            Psq &psq = psqs_[match];
            if (psq.ops.size() >= cfg_.psqEntries) {
                ++stats_.psqFullStalls;
                return false;
            }
            ++stats_.psqAppends;
            psq.ops.push_back(op);
            ++stats_.stores;
            return true;
        }
        const auto key = dataKey(op.tag, op.seq);
        auto data_it = earlyData_.find(key);
        if (data_it != earlyData_.end()) {
            // Data already here: an ordinary store.
            mem_->write(op.addr, data_it->second);
            earlyData_.erase(data_it);
            ++stats_.stores;
            accessL1(op, false, 0, now);
            return true;
        }
        // Address before data: park in a partial store queue.
        const int free_idx = freePsq();
        if (free_idx < 0) {
            ++stats_.noPsqStalls;
            return false;
        }
        Psq &psq = psqs_[free_idx];
        psq.active = true;
        psq.addr = op.addr & ~Addr{7};
        psq.waitTag = op.tag;
        psq.waitSeq = op.seq;
        psq.dataReady = false;
        psq.ops.clear();
        psq.ops.push_back(op);
        ++stats_.psqAllocations;
        ++stats_.stores;
        return true;
      }

      case MemOpKind::kStoreData:
        break;
    }
    panic("StoreBuffer: bad op kind in chain");
}

void
StoreBuffer::completeWave(WaveSlot &slot)
{
    if (!slot.pending.empty()) {
        panic("StoreBuffer %u: wave (%u,%u) completed with %zu arrived "
              "ops never issued — broken ordering chain", self_,
              slot.tag.thread, slot.tag.wave, slot.pending.size());
    }
    slotIndex_.erase(slot.tag.packed());
    slot.active = false;
    // Wave-order monotonicity (wscheck WS604): retirement must be
    // strictly increasing per thread.
    if (checker_ != nullptr) {
        checker_->onWaveRetired(self_, slot.tag.thread, slot.tag.wave,
                                now_);
    }
    if (slot.tag.thread >= nextWave_.size())
        nextWave_.resize(slot.tag.thread + 1, 0);
    nextWave_[slot.tag.thread] = slot.tag.wave + 1;
    waveDirty_ = true;
    ++stats_.waveCompletions;
}

void
StoreBuffer::drainPsqs(Cycle now, unsigned &budget)
{
    for (Psq &psq : psqs_) {
        if (!psq.active || budget == 0)
            continue;
        // Each PSQ has one read and one write port: one op per cycle.
        if (!psq.dataReady)
            continue;
        if (psq.ops.empty()) {
            psq.active = false;
            continue;
        }
        MemRequest op = psq.ops.front();
        if (op.kind == MemOpKind::kStoreAddr) {
            const auto key = dataKey(op.tag, op.seq);
            auto it = earlyData_.find(key);
            if (it == earlyData_.end()) {
                // This (younger) store's data has not arrived: rebind the
                // queue to wait on it.
                psq.waitTag = op.tag;
                psq.waitSeq = op.seq;
                psq.dataReady = false;
                continue;
            }
            mem_->write(op.addr, it->second);
            earlyData_.erase(it);
            accessL1(op, false, 0, now);
        } else {
            // A queued load: reads the freshly-stored value.
            accessL1(op, true, mem_->read(op.addr), now);
        }
        psq.ops.pop_front();
        --budget;
        if (psq.ops.empty())
            psq.active = false;
    }
}

void
StoreBuffer::tick(Cycle now)
{
    ++stats_.cycles;
    now_ = now;

    // Collect L1 completions (the cluster ticks the L1 first).
    for (std::uint64_t id : l1_->drainDone()) {
        auto it = outstanding_.find(id);
        if (it == outstanding_.end())
            panic("StoreBuffer %u: unknown L1 completion %llu", self_,
                  static_cast<unsigned long long>(id));
        if (it->second.isLoad) {
            loadDones_.push_back(LoadDone{it->second.inst, it->second.tag,
                                          it->second.value});
        }
        outstanding_.erase(it);
    }
    l1_->drainDone().clear();

    // Event arming: track whether this tick changed any state a parked
    // re-admission retry could depend on (slots freed or allocated,
    // waves advanced, PSQ space drained). Failed retries are pure
    // re-reads — without a state change they fail again — so the
    // refresh below only re-arms for them after actual progress.
    bool progress = false;

    // Re-admit parked arrivals. Only waves inside a thread's lookahead
    // window are eligible, so the per-wave buckets are scanned in wave
    // order and far-future arrivals cannot block the current wave.
    if (parkedCount_ != 0) {
        for (auto t_it = parked_.begin(); t_it != parked_.end();) {
            auto &waves = t_it->second;
            for (auto w_it = waves.begin(); w_it != waves.end();) {
                auto &reqs = w_it->second;
                bool admitted_all = true;
                std::size_t taken = 0;
                const WaveNum cur = nextWave(t_it->first);
                for (MemRequest &req : reqs) {
                    const auto packed = req.tag.packed();
                    auto slot_it = slotIndex_.find(packed);
                    if (slot_it != slotIndex_.end()) {
                        slots_[slot_it->second].pending.emplace(req.seq,
                                                                req);
                        ++taken;
                        continue;
                    }
                    if (tryAllocate(req, req.tag.wave == cur)) {
                        ++taken;
                        continue;
                    }
                    admitted_all = false;
                    break;
                }
                parkedCount_ -= taken;
                if (taken != 0)
                    progress = true;
                if (admitted_all) {
                    w_it = waves.erase(w_it);
                    continue;
                }
                reqs.erase(reqs.begin(),
                           reqs.begin() + static_cast<long>(taken));
                break;  // Later waves of this thread can wait.
            }
            t_it = waves.empty() ? parked_.erase(t_it) : ++t_it;
        }
    }

    const unsigned budget0 = cfg_.issueWidth;
    unsigned budget = budget0;
    drainPsqs(now, budget);

    // Issue chains: only a thread's *current* wave may issue. The loop
    // doubles as the issuability census for the event arming below: a
    // structural stall or a retirement proves (or may create) issuable
    // work for next cycle without a separate slot scan.
    bool stalled = false;
    bool retired = false;
    for (WaveSlot &slot : slots_) {
        if (budget == 0)
            break;
        if (!slot.active)
            continue;
        const WaveNum current = nextWave(slot.tag.thread);
        if (slot.tag.wave != current)
            continue;
        ++stats_.slotOccupancySum;
        bool progress = true;
        while (progress && budget > 0 && slot.active) {
            progress = false;
            const MemRequest *op = nullptr;
            if (slot.nextExpected == kSeqWildcard) {
                // Resolve '?': the successor must name lastIssued as its
                // concrete predecessor. (The compiler guarantees adjacent
                // ops never carry '?' on both facing links — that is what
                // MEMORY-NOPs are for.)
                for (const auto &[seq, cand] : slot.pending) {
                    if (cand.prev == slot.lastIssued) {
                        op = &cand;
                        break;
                    }
                }
            } else {
                auto it = slot.pending.find(slot.nextExpected);
                if (it != slot.pending.end())
                    op = &it->second;
            }
            if (op == nullptr)
                break;  // Next op has not arrived yet.
            MemRequest copy = *op;
            if (!issueOp(copy, now)) {
                stalled = true;
                break;  // Structural stall (PSQ pressure).
            }
            slot.pending.erase(copy.seq);
            slot.lastIssued = copy.seq;
            slot.nextExpected = copy.next;
            --budget;
            progress = true;
            if (copy.next == kSeqNone) {
                completeWave(slot);
                retired = true;
            }
        }
    }
    // Any budget consumed means an op issued or a PSQ entry drained —
    // both can unblock parked admission (slots freed, waves advanced).
    if (budget != budget0)
        progress = true;

    // Event arming, derived from what this tick itself observed (no
    // slot scan; identical computation in every clocking mode, so the
    // cluster arming — and the exported activity counters — stay
    // byte-identical across cores):
    //  - a structural stall leaves an issuable chain behind, and it
    //    must be re-attempted every cycle so psqFullStalls/noPsqStalls
    //    keep their per-cycle semantics;
    //  - a retirement may make the thread's next wave (possibly already
    //    passed by this loop) issuable;
    //  - an exhausted budget means slots were left unexamined;
    //  - an active PSQ with data drains next cycle (psqs_ is the tiny
    //    2-entry filter, so this scan is constant work);
    //  - progress with parked arrivals makes a re-admission retry
    //    worthwhile (without progress it provably fails again).
    // Anything else waits on an external event (a push or an L1
    // completion), which the cluster's mem gate observes directly.
    bool due_next = stalled || retired || budget == 0 ||
                    (progress && parkedCount_ != 0);
    if (!due_next) {
        for (const Psq &psq : psqs_) {
            if (psq.active && psq.dataReady) {
                due_next = true;
                break;
            }
        }
    }
    nextEvent_ = due_next ? now + 1 : kCycleNever;
}

std::string
StoreBuffer::debugDump() const
{
    char buf[256];
    std::string out;
    for (const WaveSlot &slot : slots_) {
        if (!slot.active)
            continue;
        std::snprintf(buf, sizeof(buf),
                      "slot t%u w%u pending=%zu last=%d next=%d\n",
                      slot.tag.thread, slot.tag.wave, slot.pending.size(),
                      slot.lastIssued, slot.nextExpected);
        out += buf;
    }
    for (const Psq &psq : psqs_) {
        if (!psq.active)
            continue;
        std::snprintf(buf, sizeof(buf),
                      "psq addr=%llx t%u w%u seq%d dataReady=%d ops=%zu\n",
                      (unsigned long long)psq.addr, psq.waitTag.thread,
                      psq.waitTag.wave, psq.waitSeq, psq.dataReady,
                      psq.ops.size());
        out += buf;
    }
    std::snprintf(buf, sizeof(buf),
                  "parked=%zu earlyData=%zu outstanding=%zu\n",
                  parkedCount_, earlyData_.size(), outstanding_.size());
    out += buf;
    return out;
}

std::uint64_t
StoreBuffer::workSignature() const
{
    std::uint64_t h = 0x73625f7369676e00ULL;  // "sb_sign" salt.
    std::size_t active_slots = 0;
    std::size_t pending_ops = 0;
    for (const WaveSlot &slot : slots_) {
        if (slot.active) {
            ++active_slots;
            pending_ops += slot.pending.size();
        }
    }
    std::size_t active_psqs = 0;
    std::size_t psq_ops = 0;
    for (const Psq &psq : psqs_) {
        if (psq.active) {
            ++active_psqs;
            psq_ops += psq.ops.size();
        }
    }
    for (std::uint64_t v : {
             stats_.requests,
             stats_.loads,
             stats_.stores,
             stats_.memNops,
             stats_.waveCompletions,
             stats_.psqAllocations,
             stats_.psqAppends,
             stats_.psqFullStalls,
             stats_.noPsqStalls,
             stats_.parkedRequests,
             stats_.slotPreemptions,
             static_cast<std::uint64_t>(active_slots),
             static_cast<std::uint64_t>(pending_ops),
             static_cast<std::uint64_t>(active_psqs),
             static_cast<std::uint64_t>(psq_ops),
             static_cast<std::uint64_t>(parkedCount_),
             static_cast<std::uint64_t>(earlyData_.size()),
             static_cast<std::uint64_t>(outstanding_.size()),
             static_cast<std::uint64_t>(loadDones_.size()),
         }) {
        h = hashCombine(h, v);
    }
    return h;
}

bool
StoreBuffer::idle() const
{
    for (const WaveSlot &slot : slots_) {
        if (slot.active)
            return false;
    }
    for (const Psq &psq : psqs_) {
        if (psq.active)
            return false;
    }
    return parkedCount_ == 0 && outstanding_.empty() &&
           loadDones_.empty() && earlyData_.empty();
}

} // namespace ws
