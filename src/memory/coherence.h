/**
 * @file
 * The coherent cache hierarchy: per-cluster L1 controllers and the
 * directory/L2 home system (paper §3.3.2).
 *
 * L1s are kept coherent by a directory-based MESI protocol. The
 * directory is the serialization point: at most one transaction is in
 * flight per line, and later requests queue behind it. L1s acknowledge
 * invalidations and downgrades unconditionally (silent clean evictions
 * make stale sharer bits legal). The banked L2 is address-interleaved
 * across home banks, so no second coherence level is needed.
 *
 * Data payloads are not modelled (see MainMemory); the protocol supplies
 * timing and traffic.
 */

#ifndef WS_MEMORY_COHERENCE_H_
#define WS_MEMORY_COHERENCE_H_

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "common/stats.h"
#include "common/types.h"
#include "memory/cache.h"
#include "network/message.h"
#include "network/timed_queue.h"

namespace ws {

/** Geometry and latency parameters of the memory hierarchy. */
struct MemTimingConfig
{
    std::uint16_t clusters = 1;
    std::size_t l1Bytes = 32 * 1024;
    unsigned l1Ways = 4;
    unsigned lineBytes = 128;
    Cycle l1HitLatency = 3;       ///< 2-cycle SRAM + 1-cycle processing.
    unsigned l1Ports = 4;         ///< Accesses per cycle.
    unsigned l1Mshrs = 16;
    std::size_t l2Bytes = 0;      ///< Total across banks; 0 = no L2.
    unsigned l2Ways = 16;
    Cycle l2Latency = 20;         ///< Bank access latency.
    Cycle memLatency = 200;
    Cycle dirOverhead = 2;        ///< Directory processing per message.
};

/** MESI stable states stored in the L1 tag array (0 = invalid). */
enum : std::uint8_t
{
    kMesiInvalid = 0,
    kMesiShared = 1,
    kMesiExclusive = 2,
    kMesiModified = 3,
};

/** Counters exported by the L1 controller. */
struct L1Stats
{
    Counter reads = 0;
    Counter writes = 0;
    Counter hits = 0;
    Counter misses = 0;
    Counter mshrHits = 0;        ///< Secondary misses merged into an MSHR.
    Counter upgrades = 0;        ///< S→M GetM transactions.
    Counter writebacks = 0;
    Counter invsReceived = 0;
    Counter downgradesReceived = 0;
    Counter portRetries = 0;     ///< Accesses deferred by port limits.
};

/**
 * One cluster's L1 data cache controller: tag array, MSHRs, and the
 * L1 side of the MESI protocol.
 */
class L1Controller
{
  public:
    L1Controller(const MemTimingConfig &cfg, ClusterId self);

    /** Timing-only access from the store buffer. */
    void request(std::uint64_t req_id, Addr addr, bool is_write, Cycle now);

    /** Coherence message delivery (from the home system). */
    void receive(const CohMsg &msg, Cycle now);

    /** Advance one cycle: process ports, fills, protocol events. */
    void tick(Cycle now);

    /** Completed request ids become visible here in completion order. */
    std::vector<std::uint64_t> &drainDone() { return done_; }

    /** Outbound coherence messages (dst = home of msg.line). */
    std::vector<CohMsg> &outbox() { return outbox_; }

    const L1Stats &stats() const { return stats_; }

    /** MESI state of the line containing @p addr (tests/diagnostics). */
    std::uint8_t probeLine(Addr addr) const { return tags_.probe(addr); }

    /** Every valid (line, MESI state) pair (wscheck WS605 audit). */
    void
    collectLines(std::vector<std::pair<Addr, std::uint8_t>> &out) const
    {
        tags_.collectValid(out);
    }

    /**
     * Test seam: force a line into the tag array in @p state without any
     * protocol transaction. Exists solely so wscheck mutant tests can
     * construct illegal cross-L1 state pairs; never called by the model.
     */
    void debugInstallLine(Addr addr, std::uint8_t state)
    {
        tags_.insert(tags_.lineAddr(addr), state);
    }

    /**
     * Hash of every observable-progress indicator (wscheck WS606):
     * ticking this controller on a cycle it was not armed for must
     * leave the signature unchanged.
     */
    std::uint64_t workSignature() const;

    /** True when no request or transaction is outstanding. */
    bool idle() const;

    /**
     * Earliest cycle at which queued work becomes processable
     * (kCycleNever when both timed queues are empty). MSHRs waiting on
     * the home system carry no local event; the reply that unblocks
     * them arrives through the scheduler-armed home/mesh path.
     */
    Cycle
    nextEventCycle() const
    {
        const Cycle in = inQueue_.nextReady();
        const Cycle done = doneTimed_.nextReady();
        return in < done ? in : done;
    }

  private:
    struct Access
    {
        std::uint64_t reqId;
        Addr addr;
        bool isWrite;
    };

    struct Waiter
    {
        std::uint64_t reqId;
        bool isWrite;
    };

    struct Mshr
    {
        bool issuedGetM = false;  ///< Current transaction requests M.
        std::vector<Waiter> waiters;
    };

    void process(const Access &acc, Cycle now);
    void complete(std::uint64_t req_id, Cycle ready);
    void handleFill(Addr line, bool exclusive, Cycle now);
    void installLine(Addr line, std::uint8_t state, Cycle now);

    MemTimingConfig cfg_;
    ClusterId self_;
    TagArray tags_;
    TimedQueue<Access> inQueue_;
    TimedQueue<std::uint64_t> doneTimed_;
    std::vector<std::uint64_t> done_;
    std::vector<CohMsg> outbox_;
    std::unordered_map<Addr, Mshr> mshrs_;
    L1Stats stats_;
};

/** Counters exported by the home system. */
struct HomeStats
{
    Counter getS = 0;
    Counter getM = 0;
    Counter putM = 0;
    Counter l2Hits = 0;
    Counter l2Misses = 0;
    Counter memFetches = 0;
    Counter invsSent = 0;
    Counter downgradesSent = 0;
    Counter queuedRequests = 0;  ///< Requests that waited on a busy line.
};

/**
 * The directory plus banked L2: the "home" side of the protocol. One
 * logical object; banking affects only which cluster's router a message
 * enters/leaves through and the bank a line's capacity comes from.
 */
class HomeSystem
{
  public:
    explicit HomeSystem(const MemTimingConfig &cfg);

    /** The cluster whose router hosts the home bank of @p line. */
    ClusterId homeOf(Addr line) const;

    /** Deliver one L1→home message. */
    void receive(const CohMsg &msg, Cycle now);

    /** Advance one cycle. */
    void tick(Cycle now);

    /** Outbound messages: (destination cluster, message). */
    std::vector<std::pair<ClusterId, CohMsg>> &outbox() { return outbox_; }

    const HomeStats &stats() const { return stats_; }

    /**
     * True when the directory has an in-flight transaction on @p line
     * (wscheck skips the MESI pair audit for such lines: transient
     * states legally overlap mid-transaction).
     */
    bool
    lineBusy(Addr line) const
    {
        auto it = dir_.find(line);
        return it != dir_.end() && it->second.busy;
    }

    /** Progress-indicator hash (wscheck WS606); see L1Controller. */
    std::uint64_t workSignature() const;

    /** True when no transaction or queued work remains. */
    bool idle() const;

    /**
     * Earliest cycle at which any queued directory work becomes ready
     * (kCycleNever when none). Busy lines awaiting L1 acks have no
     * local event; the ack wakes this component when it arrives.
     */
    Cycle
    nextEventCycle() const
    {
        Cycle next = inQueue_.nextReady();
        const Cycle out = outDelay_.nextReady();
        if (out < next)
            next = out;
        const Cycle grant = grantDone_.nextReady();
        return grant < next ? grant : next;
    }

  private:
    enum class DirState : std::uint8_t
    {
        kUncached,
        kShared,
        kOwned,   ///< One L1 holds the line in E or M.
    };

    struct DirEntry
    {
        DirState state = DirState::kUncached;
        std::uint64_t sharers = 0;  ///< Bitmask over clusters.
        ClusterId owner = 0;
        bool busy = false;
        int pendingAcks = 0;
        CohMsg current;             ///< Transaction being serviced.
        std::deque<CohMsg> waiting;
    };

    void start(DirEntry &entry, const CohMsg &msg, Cycle now);
    void finish(Addr line, DirEntry &entry, Cycle now);
    /** Send a data grant, keeping the line busy until it departs. */
    void grant(DirEntry &entry, ClusterId dst, CohType type, Addr line,
               Cycle ready);
    /** Latency to read the line out of L2/memory at its home bank. */
    Cycle fetchLatency(Addr line);
    void send(ClusterId dst, CohType type, Addr line, ClusterId requester,
              Cycle ready);

    MemTimingConfig cfg_;
    std::vector<TagArray> l2Banks_;       ///< Empty when l2Bytes == 0.
    std::unordered_map<Addr, DirEntry> dir_;
    TimedQueue<CohMsg> inQueue_;
    TimedQueue<std::pair<ClusterId, CohMsg>> outDelay_;
    TimedQueue<Addr> grantDone_;   ///< Lines whose grant departs then.
    std::vector<std::pair<ClusterId, CohMsg>> outbox_;
    HomeStats stats_;
    Counter busyLines_ = 0;
};

} // namespace ws

#endif // WS_MEMORY_COHERENCE_H_
