#include "memory/coherence.h"

#include <algorithm>

#include "common/log.h"
#include "common/rng.h"

namespace ws {

// ---------------------------------------------------------------------
// L1Controller
// ---------------------------------------------------------------------

L1Controller::L1Controller(const MemTimingConfig &cfg, ClusterId self)
    : cfg_(cfg), self_(self), tags_(cfg.l1Bytes, cfg.l1Ways, cfg.lineBytes)
{}

void
L1Controller::request(std::uint64_t req_id, Addr addr, bool is_write,
                      Cycle now)
{
    inQueue_.push(Access{req_id, addr, is_write}, now + 1);
}

void
L1Controller::complete(std::uint64_t req_id, Cycle ready)
{
    doneTimed_.push(req_id, ready);
}

void
L1Controller::process(const Access &acc, Cycle now)
{
    if (acc.isWrite)
        ++stats_.writes;
    else
        ++stats_.reads;

    const Addr line = tags_.lineAddr(acc.addr);
    const std::uint8_t state = tags_.probe(line);

    // An in-flight transaction on the line absorbs this access.
    auto mshr_it = mshrs_.find(line);
    if (mshr_it != mshrs_.end()) {
        ++stats_.mshrHits;
        mshr_it->second.waiters.push_back(Waiter{acc.reqId, acc.isWrite});
        return;
    }

    const bool hit =
        state != kMesiInvalid &&
        (!acc.isWrite || state == kMesiExclusive || state == kMesiModified);
    if (hit) {
        ++stats_.hits;
        tags_.touch(line);
        if (acc.isWrite && state == kMesiExclusive)
            tags_.setState(line, kMesiModified);  // Silent E→M upgrade.
        complete(acc.reqId, now + cfg_.l1HitLatency - 1);
        return;
    }

    ++stats_.misses;
    if (mshrs_.size() >= cfg_.l1Mshrs) {
        // All MSHRs busy: retry the access next cycle.
        ++stats_.portRetries;
        inQueue_.push(acc, now + 1);
        return;
    }

    Mshr mshr;
    mshr.issuedGetM = acc.isWrite;
    mshr.waiters.push_back(Waiter{acc.reqId, acc.isWrite});
    mshrs_.emplace(line, std::move(mshr));
    if (acc.isWrite && state == kMesiShared)
        ++stats_.upgrades;
    outbox_.push_back(CohMsg{acc.isWrite ? CohType::kGetM : CohType::kGetS,
                             line, self_});
}

void
L1Controller::installLine(Addr line, std::uint8_t state, Cycle now)
{
    if (tags_.probe(line) != kMesiInvalid) {
        tags_.setState(line, state);
        tags_.touch(line);
        return;
    }
    TagArray::Victim victim = tags_.insert(line, state);
    if (victim.valid && victim.state == kMesiModified) {
        ++stats_.writebacks;
        outbox_.push_back(CohMsg{CohType::kPutM, victim.lineAddr, self_});
    }
    (void)now;
}

void
L1Controller::handleFill(Addr line, bool exclusive, Cycle now)
{
    auto it = mshrs_.find(line);
    if (it == mshrs_.end()) {
        // A fill for a line we gave up on (e.g. invalidated mid-flight
        // with no waiters left) — install and move on.
        installLine(line, exclusive ? kMesiExclusive : kMesiShared, now);
        return;
    }
    Mshr mshr = std::move(it->second);
    mshrs_.erase(it);

    installLine(line, exclusive ? kMesiExclusive : kMesiShared, now);

    const Cycle ready = now + cfg_.l1HitLatency;
    bool need_write = false;
    for (const Waiter &w : mshr.waiters) {
        if (w.isWrite && !exclusive) {
            need_write = true;
            continue;  // Re-handled below via an upgrade.
        }
        if (w.isWrite)
            tags_.setState(line, kMesiModified);
        complete(w.reqId, ready);
    }

    if (need_write) {
        // The grant was only S but writers are waiting: upgrade.
        Mshr up;
        up.issuedGetM = true;
        for (const Waiter &w : mshr.waiters) {
            if (w.isWrite)
                up.waiters.push_back(w);
        }
        ++stats_.upgrades;
        mshrs_.emplace(line, std::move(up));
        outbox_.push_back(CohMsg{CohType::kGetM, line, self_});
    }
}

void
L1Controller::receive(const CohMsg &msg, Cycle now)
{
    switch (msg.type) {
      case CohType::kData:
        handleFill(msg.line, false, now);
        break;
      case CohType::kDataEx:
        handleFill(msg.line, true, now);
        break;
      case CohType::kInv:
        // Note: an Inv can never overtake a grant for the same line —
        // the directory keeps the line's transaction busy until the
        // grant has departed, and home→L1 delivery is FIFO per route.
        ++stats_.invsReceived;
        tags_.erase(msg.line);
        outbox_.push_back(CohMsg{CohType::kInvAck, msg.line, self_});
        break;
      case CohType::kDown: {
        ++stats_.downgradesReceived;
        const std::uint8_t state = tags_.probe(msg.line);
        if (state == kMesiModified || state == kMesiExclusive)
            tags_.setState(msg.line, kMesiShared);
        outbox_.push_back(CohMsg{CohType::kDownAck, msg.line, self_});
        break;
      }
      case CohType::kPutAck:
        break;  // Fire-and-forget writeback completed.
      default:
        panic("L1Controller: unexpected message type %u",
              static_cast<unsigned>(msg.type));
    }
}

void
L1Controller::tick(Cycle now)
{
    for (unsigned port = 0;
         port < cfg_.l1Ports && inQueue_.ready(now); ++port) {
        process(inQueue_.pop(now), now);
    }
    while (doneTimed_.ready(now))
        done_.push_back(doneTimed_.pop(now));
}

bool
L1Controller::idle() const
{
    return inQueue_.empty() && doneTimed_.empty() && done_.empty() &&
           outbox_.empty() && mshrs_.empty();
}

std::uint64_t
L1Controller::workSignature() const
{
    std::uint64_t h = 0x6c315f7369676e00ULL;  // "l1_sign" salt.
    for (std::uint64_t v : {
             stats_.reads,
             stats_.writes,
             stats_.hits,
             stats_.misses,
             stats_.mshrHits,
             stats_.upgrades,
             stats_.writebacks,
             stats_.invsReceived,
             stats_.downgradesReceived,
             stats_.portRetries,
             static_cast<std::uint64_t>(inQueue_.size()),
             static_cast<std::uint64_t>(doneTimed_.size()),
             static_cast<std::uint64_t>(done_.size()),
             static_cast<std::uint64_t>(outbox_.size()),
             static_cast<std::uint64_t>(mshrs_.size()),
             static_cast<std::uint64_t>(tags_.validLines()),
         }) {
        h = hashCombine(h, v);
    }
    return h;
}

// ---------------------------------------------------------------------
// HomeSystem
// ---------------------------------------------------------------------

namespace {

std::size_t
pow2Floor(std::size_t x)
{
    std::size_t p = 1;
    while (p * 2 <= x)
        p *= 2;
    return p;
}

} // namespace

HomeSystem::HomeSystem(const MemTimingConfig &cfg) : cfg_(cfg)
{
    if (cfg_.l2Bytes > 0) {
        const std::size_t per_bank = cfg_.l2Bytes / cfg_.clusters;
        const std::size_t way_bytes =
            static_cast<std::size_t>(cfg_.l2Ways) * cfg_.lineBytes;
        std::size_t sets = per_bank / way_bytes;
        if (sets == 0) {
            fatal("HomeSystem: L2 of %zu bytes is too small for %u banks",
                  cfg_.l2Bytes, cfg_.clusters);
        }
        sets = pow2Floor(sets);
        for (unsigned b = 0; b < cfg_.clusters; ++b) {
            l2Banks_.emplace_back(sets * way_bytes, cfg_.l2Ways,
                                  cfg_.lineBytes);
        }
    }
}

ClusterId
HomeSystem::homeOf(Addr line) const
{
    return static_cast<ClusterId>((line / cfg_.lineBytes) % cfg_.clusters);
}

void
HomeSystem::send(ClusterId dst, CohType type, Addr line,
                 ClusterId requester, Cycle ready)
{
    outDelay_.push({dst, CohMsg{type, line, requester}}, ready);
}

void
HomeSystem::grant(DirEntry &entry, ClusterId dst, CohType type, Addr line,
                  Cycle ready)
{
    // A grant whose data is still being fetched keeps the line's
    // transaction busy until the reply departs; otherwise a later
    // requester's invalidation could race ahead of the grant.
    send(dst, type, line, dst, ready);
    if (!entry.busy) {
        entry.busy = true;
        ++busyLines_;
    }
    grantDone_.push(line, ready);
}

Cycle
HomeSystem::fetchLatency(Addr line)
{
    if (l2Banks_.empty()) {
        ++stats_.memFetches;
        return cfg_.memLatency;
    }
    TagArray &bank = l2Banks_[homeOf(line)];
    if (bank.probe(line) != 0) {
        ++stats_.l2Hits;
        bank.touch(line);
        return cfg_.l2Latency;
    }
    ++stats_.l2Misses;
    ++stats_.memFetches;
    bank.insert(line, 1);  // Dirty-bit handling is timing-neutral here.
    return cfg_.l2Latency + cfg_.memLatency;
}

void
HomeSystem::receive(const CohMsg &msg, Cycle now)
{
    inQueue_.push(msg, now + cfg_.dirOverhead);
}

void
HomeSystem::start(DirEntry &entry, const CohMsg &msg, Cycle now)
{
    const Addr line = msg.line;
    const std::uint64_t bit = 1ULL << msg.requester;
    switch (msg.type) {
      case CohType::kGetS:
        ++stats_.getS;
        switch (entry.state) {
          case DirState::kUncached:
            entry.state = DirState::kOwned;  // MESI: grant E.
            entry.owner = msg.requester;
            grant(entry, msg.requester, CohType::kDataEx, line,
                  now + fetchLatency(line));
            break;
          case DirState::kShared:
            entry.sharers |= bit;
            grant(entry, msg.requester, CohType::kData, line,
                  now + fetchLatency(line));
            break;
          case DirState::kOwned:
            if (entry.owner == msg.requester) {
                // Stale re-request after a silent eviction of E.
                grant(entry, msg.requester, CohType::kDataEx, line,
                      now + fetchLatency(line));
                break;
            }
            entry.busy = true;
            ++busyLines_;
            entry.current = msg;
            entry.pendingAcks = 1;
            ++stats_.downgradesSent;
            send(entry.owner, CohType::kDown, line, msg.requester,
                 now + 1);
            break;
        }
        break;

      case CohType::kGetM:
        ++stats_.getM;
        switch (entry.state) {
          case DirState::kUncached:
            entry.state = DirState::kOwned;
            entry.owner = msg.requester;
            grant(entry, msg.requester, CohType::kDataEx, line,
                  now + fetchLatency(line));
            break;
          case DirState::kShared: {
            entry.busy = true;
            ++busyLines_;
            entry.current = msg;
            entry.pendingAcks = 0;
            for (ClusterId c = 0; c < cfg_.clusters; ++c) {
                if (c == msg.requester)
                    continue;
                if (entry.sharers & (1ULL << c)) {
                    ++entry.pendingAcks;
                    ++stats_.invsSent;
                    send(c, CohType::kInv, line, msg.requester, now + 1);
                }
            }
            if (entry.pendingAcks == 0) {
                // Requester was the only sharer.
                finish(line, entry, now);
            }
            break;
          }
          case DirState::kOwned:
            if (entry.owner == msg.requester) {
                grant(entry, msg.requester, CohType::kDataEx, line,
                      now + fetchLatency(line));
                break;
            }
            entry.busy = true;
            ++busyLines_;
            entry.current = msg;
            entry.pendingAcks = 1;
            ++stats_.invsSent;
            send(entry.owner, CohType::kInv, line, msg.requester, now + 1);
            break;
        }
        break;

      case CohType::kPutM:
        ++stats_.putM;
        if (entry.state == DirState::kOwned &&
            entry.owner == msg.requester) {
            entry.state = DirState::kUncached;
            entry.sharers = 0;
        }
        send(msg.requester, CohType::kPutAck, line, msg.requester, now + 1);
        break;

      default:
        panic("HomeSystem: unexpected request type %u",
              static_cast<unsigned>(msg.type));
    }
}

void
HomeSystem::finish(Addr line, DirEntry &entry, Cycle now)
{
    const CohMsg &req = entry.current;
    if (entry.busy) {
        entry.busy = false;
        --busyLines_;
    }
    if (req.type == CohType::kGetS) {
        // Downgrade complete: owner kept S, requester joins S.
        entry.state = DirState::kShared;
        entry.sharers = (1ULL << entry.owner) | (1ULL << req.requester);
        grant(entry, req.requester, CohType::kData, line, now + 1);
    } else {
        // GetM: all other copies gone; requester owns the line.
        entry.state = DirState::kOwned;
        entry.owner = req.requester;
        entry.sharers = 0;
        grant(entry, req.requester, CohType::kDataEx, line, now + 1);
    }
}

void
HomeSystem::tick(Cycle now)
{
    // Grants that have departed release their line's transaction.
    while (grantDone_.ready(now)) {
        const Addr line = grantDone_.pop(now);
        auto it = dir_.find(line);
        if (it == dir_.end())
            continue;
        DirEntry &entry = it->second;
        if (entry.busy && entry.pendingAcks == 0) {
            entry.busy = false;
            --busyLines_;
            while (!entry.waiting.empty()) {
                inQueue_.push(entry.waiting.front(), now + 1);
                entry.waiting.pop_front();
            }
        }
    }

    while (inQueue_.ready(now)) {
        CohMsg msg = inQueue_.pop(now);
        DirEntry &entry = dir_[msg.line];
        if (entry.busy) {
            if (msg.type == CohType::kInvAck ||
                msg.type == CohType::kDownAck) {
                if (--entry.pendingAcks == 0)
                    finish(msg.line, entry, now);
            } else if (msg.type == CohType::kPutM) {
                // Crossed with an Inv/Down of the same transaction.
                ++stats_.putM;
                send(msg.requester, CohType::kPutAck, msg.line,
                     msg.requester, now + 1);
            } else {
                ++stats_.queuedRequests;
                entry.waiting.push_back(msg);
            }
            continue;
        }
        if (msg.type == CohType::kInvAck || msg.type == CohType::kDownAck) {
            // Stale ack for an already-finished transaction; drop.
            continue;
        }
        start(entry, msg, now);
    }

    while (outDelay_.ready(now))
        outbox_.push_back(outDelay_.pop(now));
}

bool
HomeSystem::idle() const
{
    return inQueue_.empty() && outDelay_.empty() && outbox_.empty() &&
           grantDone_.empty() && busyLines_ == 0;
}

std::uint64_t
HomeSystem::workSignature() const
{
    std::uint64_t h = 0x686f6d655f736700ULL;  // "home_sg" salt.
    for (std::uint64_t v : {
             stats_.getS,
             stats_.getM,
             stats_.putM,
             stats_.l2Hits,
             stats_.l2Misses,
             stats_.memFetches,
             stats_.invsSent,
             stats_.downgradesSent,
             stats_.queuedRequests,
             static_cast<std::uint64_t>(inQueue_.size()),
             static_cast<std::uint64_t>(outDelay_.size()),
             static_cast<std::uint64_t>(grantDone_.size()),
             static_cast<std::uint64_t>(outbox_.size()),
             busyLines_,
         }) {
        h = hashCombine(h, v);
    }
    return h;
}

} // namespace ws
