#include "memory/cache.h"

#include "common/log.h"

namespace ws {

namespace {

bool
isPow2(std::uint64_t x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

} // namespace

TagArray::TagArray(std::size_t size_bytes, unsigned ways,
                   unsigned line_bytes)
    : ways_(ways), lineBytes_(line_bytes),
      lineMask_(static_cast<Addr>(line_bytes) - 1)
{
    if (ways == 0 || line_bytes == 0 || !isPow2(line_bytes))
        fatal("TagArray: bad geometry (ways %u, line %u)", ways,
              line_bytes);
    const std::size_t way_bytes =
        static_cast<std::size_t>(ways) * line_bytes;
    if (size_bytes == 0 || size_bytes % way_bytes != 0)
        fatal("TagArray: size %zu not a multiple of ways*line (%zu)",
              size_bytes, way_bytes);
    sets_ = static_cast<unsigned>(size_bytes / way_bytes);
    if (!isPow2(sets_))
        fatal("TagArray: set count %u must be a power of two", sets_);
    lines_.resize(static_cast<std::size_t>(sets_) * ways_);
}

std::size_t
TagArray::setIndex(Addr addr) const
{
    return static_cast<std::size_t>((addr / lineBytes_) & (sets_ - 1));
}

TagArray::Line *
TagArray::find(Addr addr)
{
    const Addr la = lineAddr(addr);
    Line *set = &lines_[setIndex(addr) * ways_];
    for (unsigned w = 0; w < ways_; ++w) {
        if (set[w].state != 0 && set[w].addr == la)
            return &set[w];
    }
    return nullptr;
}

const TagArray::Line *
TagArray::find(Addr addr) const
{
    return const_cast<TagArray *>(this)->find(addr);
}

std::uint8_t
TagArray::probe(Addr addr) const
{
    const Line *line = find(addr);
    return line != nullptr ? line->state : 0;
}

void
TagArray::touch(Addr addr)
{
    Line *line = find(addr);
    if (line == nullptr)
        panic("TagArray: touch() on absent line %#llx",
              static_cast<unsigned long long>(addr));
    line->lru = ++clock_;
}

void
TagArray::setState(Addr addr, std::uint8_t state)
{
    if (state == 0)
        panic("TagArray: setState(0); use erase()");
    Line *line = find(addr);
    if (line == nullptr)
        panic("TagArray: setState() on absent line %#llx",
              static_cast<unsigned long long>(addr));
    line->state = state;
}

TagArray::Victim
TagArray::insert(Addr addr, std::uint8_t state)
{
    if (state == 0)
        panic("TagArray: insert with invalid state");
    if (find(addr) != nullptr)
        panic("TagArray: insert of already-present line %#llx",
              static_cast<unsigned long long>(addr));
    Line *set = &lines_[setIndex(addr) * ways_];
    Line *target = nullptr;
    for (unsigned w = 0; w < ways_; ++w) {
        if (set[w].state == 0) {
            target = &set[w];
            break;
        }
        if (target == nullptr || set[w].lru < target->lru)
            target = &set[w];
    }
    Victim victim;
    if (target->state != 0) {
        victim.valid = true;
        victim.lineAddr = target->addr;
        victim.state = target->state;
    }
    target->addr = lineAddr(addr);
    target->state = state;
    target->lru = ++clock_;
    return victim;
}

bool
TagArray::erase(Addr addr)
{
    Line *line = find(addr);
    if (line == nullptr)
        return false;
    line->state = 0;
    return true;
}

std::size_t
TagArray::validLines() const
{
    std::size_t n = 0;
    for (const Line &line : lines_) {
        if (line.state != 0)
            ++n;
    }
    return n;
}

void
TagArray::collectValid(
    std::vector<std::pair<Addr, std::uint8_t>> &out) const
{
    for (const Line &line : lines_) {
        if (line.state != 0)
            out.emplace_back(line.addr, line.state);
    }
}

} // namespace ws
