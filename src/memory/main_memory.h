/**
 * @file
 * Functional backing store for the simulated address space.
 *
 * wavefabric separates *architectural data* from *timing*: all loads and
 * stores read/write this paged word store in wave order (the store
 * buffer's issue order), while the cache hierarchy and coherence
 * protocol model latency and traffic only. This keeps the protocol
 * machinery honest without threading data payloads through every
 * message (see DESIGN.md).
 */

#ifndef WS_MEMORY_MAIN_MEMORY_H_
#define WS_MEMORY_MAIN_MEMORY_H_

#include <array>
#include <cstdint>
#include <unordered_map>

#include "common/types.h"

namespace ws {

class MainMemory
{
  public:
    /** Read the 64-bit word containing @p addr (0 if never written). */
    Value read(Addr addr) const;

    /** Write the 64-bit word containing @p addr. */
    void write(Addr addr, Value v);

    /** Number of resident 4 KB pages (tests, footprint stats). */
    std::size_t residentPages() const { return pages_.size(); }

  private:
    static constexpr std::size_t kPageWords = 512;  // 4 KB pages.

    static Addr wordIndex(Addr addr) { return addr >> 3; }
    static Addr pageOf(Addr addr) { return wordIndex(addr) / kPageWords; }
    static std::size_t
    slotOf(Addr addr)
    {
        return static_cast<std::size_t>(wordIndex(addr) % kPageWords);
    }

    std::unordered_map<Addr, std::array<Value, kPageWords>> pages_;
};

} // namespace ws

#endif // WS_MEMORY_MAIN_MEMORY_H_
