#include "memory/main_memory.h"

namespace ws {

Value
MainMemory::read(Addr addr) const
{
    auto it = pages_.find(pageOf(addr));
    if (it == pages_.end())
        return 0;
    return it->second[slotOf(addr)];
}

void
MainMemory::write(Addr addr, Value v)
{
    auto it = pages_.find(pageOf(addr));
    if (it == pages_.end())
        it = pages_.emplace(pageOf(addr),
                            std::array<Value, kPageWords>{}).first;
    it->second[slotOf(addr)] = v;
}

} // namespace ws
