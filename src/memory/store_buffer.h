/**
 * @file
 * The wave-ordered store buffer (paper §3.3.1).
 *
 * One store buffer per cluster recovers von Neumann memory order from
 * the <prev, this, next> annotations on memory tokens. All requests of
 * one dynamic wave are managed by one store buffer; waves of a thread
 * retire strictly in order. The buffer implements:
 *
 *  - up to four concurrently-buffered waves (wave slots);
 *  - chained in-order issue within a wave, including '?' wildcard link
 *    resolution for memory ops under control flow;
 *  - *store decoupling* via partial store queues (PSQs): a store whose
 *    address arrived before its data parks in a PSQ so younger
 *    operations can issue; same-address younger operations join the PSQ
 *    and drain in order once the data shows up.
 */

#ifndef WS_MEMORY_STORE_BUFFER_H_
#define WS_MEMORY_STORE_BUFFER_H_

#include <cstdint>
#include <string>
#include <deque>
#include <map>
#include <unordered_map>
#include <vector>

#include "check/checker.h"
#include "common/stats.h"
#include "common/types.h"
#include "memory/coherence.h"
#include "memory/main_memory.h"
#include "network/message.h"

namespace ws {

struct StoreBufferConfig
{
    unsigned waveSlots = 4;      ///< Concurrent wave sequences.
    unsigned psqCount = 2;       ///< Partial store queues.
    unsigned psqEntries = 4;     ///< Capacity of each PSQ.
    unsigned issueWidth = 4;     ///< Ops processed per cycle.
    unsigned waveLookahead = 4;  ///< How far ahead of a thread's current
                                 ///  wave a slot may be allocated.
};

/** A completed load, ready to be fanned out to consumer PEs. */
struct LoadDone
{
    InstId inst = kInvalidInst;
    Tag tag;
    Value value = 0;
};

struct StoreBufferStats
{
    Counter requests = 0;
    Counter loads = 0;
    Counter stores = 0;
    Counter memNops = 0;
    Counter waveCompletions = 0;
    Counter psqAllocations = 0;
    Counter psqAppends = 0;      ///< Younger same-address ops queued.
    Counter psqFullStalls = 0;
    Counter noPsqStalls = 0;     ///< Store stalled: no data, no free PSQ.
    Counter parkedRequests = 0;  ///< Arrivals with no allocatable slot.
    Counter slotPreemptions = 0; ///< Future-wave slots re-parked so a
                                 ///  current wave could be buffered.
    Counter slotOccupancySum = 0;
    Counter cycles = 0;
};

class StoreBuffer
{
  public:
    StoreBuffer(const StoreBufferConfig &cfg, ClusterId self,
                L1Controller *l1, MainMemory *mem);

    /** Deliver one memory request (from a MEM pseudo-PE or the mesh). */
    void push(const MemRequest &req, Cycle now);

    /** Advance one cycle: allocate slots, drain PSQs, issue the chains. */
    void tick(Cycle now);

    /** Completed loads; the cluster drains and routes them. */
    std::vector<LoadDone> &drainLoadDones() { return loadDones_; }

    /**
     * Cached earliest cycle at which this buffer can make progress on
     * its own: now+1 while an issuable chain op, a drainable PSQ, or a
     * parked re-admission retry (after a state change) exists;
     * kCycleNever otherwise. Every external unblocking event arrives
     * through a path the cluster's mem gate already watches (sbIn_
     * pushes, L1 completions), and pushes are always followed by a
     * tick in the same cycle, so the cache is refreshed before it can
     * go stale. Replaces the old "non-idle pins the cluster to next
     * cycle" rule: a buffer full of parked ops waiting on in-flight
     * tokens no longer keeps the whole cluster ticking.
     */
    Cycle nextEventCycle() const { return nextEvent_; }

    const StoreBufferStats &stats() const { return stats_; }

    /** Oldest unretired wave of thread @p t (k-loop-bounding input). */
    WaveNum
    nextWave(ThreadId t) const
    {
        return t < nextWave_.size() ? nextWave_[t] : 0;
    }

    /**
     * True when some thread's oldest unretired wave advanced since the
     * last clearWaveDirty(). The processor refreshes its shared wave
     * window only then, instead of re-reading every thread's base every
     * cycle (waves retire every few hundred cycles; the per-tick walk
     * was pure overhead). Starts dirty so the first tick initializes
     * the window.
     */
    bool waveDirty() const { return waveDirty_; }
    void clearWaveDirty() { waveDirty_ = false; }

    /** True when nothing is buffered or in flight. */
    bool idle() const;

    /** Runtime invariant checker (wscheck WS604; null when off). */
    void setChecker(RuntimeChecker *checker) { checker_ = checker; }

    /**
     * Hash of every observable-progress indicator (wscheck WS606).
     * Excludes the unconditional per-tick counters (cycles,
     * slotOccupancySum), which advance in --always-tick mode even when
     * no work exists and are not exported by Processor::report().
     */
    std::uint64_t workSignature() const;

    /** Human-readable snapshot of slots/PSQs/parked state (debugging). */
    std::string debugDump() const;

  private:
    struct WaveSlot
    {
        bool active = false;
        Tag tag;
        std::map<std::int32_t, MemRequest> pending;  ///< Arrived, unissued.
        std::int32_t lastIssued = kSeqNone;
        std::int32_t nextExpected = 0;
    };

    struct Psq
    {
        bool active = false;
        Addr addr = 0;             ///< Word address the queue is bound to.
        Tag waitTag;               ///< Store whose data we await.
        std::int32_t waitSeq = 0;
        bool dataReady = false;
        std::deque<MemRequest> ops;
    };

    struct Outstanding
    {
        bool isLoad = false;
        InstId inst = kInvalidInst;
        Tag tag;
        Value value = 0;
    };

    static std::uint64_t
    dataKey(const Tag &tag, std::int32_t seq)
    {
        return tag.packed() * 131 + static_cast<std::uint64_t>(
                                        static_cast<std::uint32_t>(seq));
    }

    bool tryAllocate(const MemRequest &req, bool allow_evict);
    /** Re-park a never-issued future-wave slot to make room. */
    bool evictFutureSlot();
    int psqMatch(Addr addr) const;
    int freePsq() const;
    /** Issue one chain op; returns false when the slot must stall. */
    bool issueOp(const MemRequest &op, Cycle now);
    void accessL1(const MemRequest &op, bool is_load, Value value,
                  Cycle now);
    void drainPsqs(Cycle now, unsigned &budget);
    void completeWave(WaveSlot &slot);

    StoreBufferConfig cfg_;
    ClusterId self_;
    L1Controller *l1_;
    MainMemory *mem_;

    std::vector<WaveSlot> slots_;
    std::unordered_map<std::uint64_t, int> slotIndex_;  ///< tag → slot.
    /** Oldest unretired wave, indexed by thread; grown on retirement.
     *  Threads past the end are implicitly at wave 0. The issue loop
     *  reads this once per active slot per tick — as a hashtable the
     *  lookups alone showed up in profiles. */
    std::vector<WaveNum> nextWave_;
    /** Arrivals with no allocatable slot, bucketed so far-future waves
     *  can never block the current wave (per thread, per wave). */
    std::unordered_map<ThreadId, std::map<WaveNum, std::vector<MemRequest>>>
        parked_;
    std::size_t parkedCount_ = 0;
    std::unordered_map<std::uint64_t, Value> earlyData_;
    std::vector<Psq> psqs_;
    std::unordered_map<std::uint64_t, Outstanding> outstanding_;
    std::uint64_t nextReqId_ = 0;
    std::vector<LoadDone> loadDones_;
    StoreBufferStats stats_;
    bool waveDirty_ = true;
    RuntimeChecker *checker_ = nullptr;  ///< Null when checking is off.
    Cycle now_ = 0;  ///< Cycle of the current/last tick (check stamps).
    Cycle nextEvent_ = kCycleNever;  ///< See nextEventCycle().
};

} // namespace ws

#endif // WS_MEMORY_STORE_BUFFER_H_
