/**
 * @file
 * Generic set-associative tag array with true-LRU replacement.
 *
 * The L1 data caches and the banked L2 both build on this structure.
 * Lines carry a small user-defined state byte (the MESI state for L1s, a
 * dirty bit for the L2); state 0 always means invalid.
 */

#ifndef WS_MEMORY_CACHE_H_
#define WS_MEMORY_CACHE_H_

#include <cstdint>
#include <vector>

#include "common/stats.h"
#include "common/types.h"

namespace ws {

class TagArray
{
  public:
    /** A victim returned by insert(): the line that was displaced. */
    struct Victim
    {
        bool valid = false;
        Addr lineAddr = 0;
        std::uint8_t state = 0;
    };

    /**
     * @param size_bytes total capacity (must be a multiple of
     *        ways*line_bytes), @param ways associativity,
     *        @param line_bytes line size (power of two).
     */
    TagArray(std::size_t size_bytes, unsigned ways, unsigned line_bytes);

    /** Line-aligned address of @p addr. */
    Addr lineAddr(Addr addr) const { return addr & ~lineMask_; }

    /**
     * Probe for @p addr. Returns the line's state (0 = miss). Does not
     * update LRU; use touch() when the access succeeds.
     */
    std::uint8_t probe(Addr addr) const;

    /** Mark @p addr most recently used; requires it to be present. */
    void touch(Addr addr);

    /** Update the state of a present line; requires it to be present. */
    void setState(Addr addr, std::uint8_t state);

    /**
     * Install @p addr with @p state, evicting the LRU line of the set if
     * the set is full. Returns the victim (valid=false if none).
     */
    Victim insert(Addr addr, std::uint8_t state);

    /** Drop @p addr if present; returns true when a line was dropped. */
    bool erase(Addr addr);

    /** Number of valid lines (tests). */
    std::size_t validLines() const;

    /** Append every valid (lineAddr, state) pair to @p out (wscheck). */
    void collectValid(std::vector<std::pair<Addr, std::uint8_t>> &out) const;

    unsigned numSets() const { return sets_; }
    unsigned ways() const { return ways_; }
    unsigned lineBytes() const { return lineBytes_; }

  private:
    struct Line
    {
        Addr addr = 0;            ///< Line-aligned address.
        std::uint8_t state = 0;   ///< 0 = invalid.
        std::uint64_t lru = 0;    ///< Last-use stamp.
    };

    std::size_t setIndex(Addr addr) const;
    Line *find(Addr addr);
    const Line *find(Addr addr) const;

    unsigned sets_;
    unsigned ways_;
    unsigned lineBytes_;
    Addr lineMask_;
    std::uint64_t clock_ = 0;
    std::vector<Line> lines_;   ///< sets_ * ways_, set-major.
};

} // namespace ws

#endif // WS_MEMORY_CACHE_H_
